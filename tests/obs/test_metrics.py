"""CounterSet, the store writer's flush series, and /metrics exposition."""

from __future__ import annotations

import threading

from repro.core.parsing import RawXidRecord
from repro.fleet.exposition import render_prometheus
from repro.fleet.registry import HealthRegistry
from repro.obs import CounterSet
from repro.store import EventStore, StoreWriter


def _record(t, node="gpua001", pci="0000:07:00", xid=95, msg="m"):
    return RawXidRecord(
        time=float(t), node_id=node, pci_bus=pci, xid=xid, message=msg
    )


class TestCounterSet:
    def test_inc_get_and_values(self):
        counters = CounterSet()
        counters.inc("a")
        counters.inc("a", 2.5)
        counters.inc("b", 4)
        assert counters.get("a") == 3.5
        assert counters.get("missing") == 0.0
        assert counters.values() == {"a": 3.5, "b": 4.0}

    def test_values_returns_a_snapshot_copy(self):
        counters = CounterSet()
        counters.inc("a")
        snap = counters.values()
        counters.inc("a")
        assert snap == {"a": 1.0}

    def test_thread_safety(self):
        counters = CounterSet()

        def bump():
            for _ in range(1000):
                counters.inc("n")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counters.get("n") == 8000


class TestStoreWriterCounters:
    def test_flush_feeds_the_counter_set(self, tmp_path):
        counters = CounterSet()
        store = EventStore.open_or_create(tmp_path / "events")
        writer = StoreWriter(store, segment_records=2, counters=counters)
        for i in range(5):
            writer.on_record(_record(float(i)))
        writer.close()
        values = counters.values()
        # 5 records at segment_records=2: two full flushes + close.
        assert values["store.flushes"] == 3
        assert values["store.records_written"] == 5
        assert values["store.flush_seconds"] >= 0
        assert writer.flushes == 3
        assert writer.flush_seconds_total >= 0

    def test_writer_works_without_counters(self, tmp_path):
        store = EventStore.open_or_create(tmp_path / "events")
        writer = StoreWriter(store, segment_records=10)
        writer.on_record(_record(1.0))
        writer.close()
        assert writer.flushes == 1
        assert store.n_records == 1


class TestExpositionSeries:
    def test_ingest_counter_prefers_the_counter_set(self):
        registry = HealthRegistry(window_seconds=5.0)
        registry.ingest(_record(0.0))
        counters = {"fleet.records_ingested": 42.0}
        text = render_prometheus(registry, counters=counters)
        assert "repro_fleet_records_ingested_total 42" in text

    def test_ingest_counter_falls_back_to_registry_lines(self):
        registry = HealthRegistry(window_seconds=5.0)
        registry.ingest(_record(0.0))
        registry.ingest(_record(100.0))
        text = render_prometheus(registry)
        assert "repro_fleet_records_ingested_total 2" in text

    def test_store_flush_series_rendered_when_present(self):
        registry = HealthRegistry(window_seconds=5.0)
        counters = {
            "store.flushes": 3.0,
            "store.flush_seconds": 0.25,
            "store.records_written": 120.0,
        }
        text = render_prometheus(registry, counters=counters)
        assert "# TYPE repro_fleet_store_flushes_total counter" in text
        assert "repro_fleet_store_flushes_total 3" in text
        assert "repro_fleet_store_flush_seconds_total 0.25" in text
        assert "repro_fleet_store_records_written_total 120" in text

    def test_store_series_absent_without_counters(self):
        registry = HealthRegistry(window_seconds=5.0)
        text = render_prometheus(registry)
        assert "repro_fleet_store_flushes_total" not in text
