"""Fixtures for the observability suite.

The identity tests run real CLI study/simulate invocations, so they get
one shared on-disk dataset (scale 0.004 — a few hundred log files).
Every test leaves the module-level tracer deactivated; the autouse
guard below makes sure a failing test can't leak an active tracer into
its neighbours.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.cli import main

SCALE, SEED = "0.004", "3"


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    obs.deactivate()
    yield
    obs.deactivate()


@pytest.fixture(scope="session")
def obs_dataset(tmp_path_factory):
    """A small synthesized dataset directory for traced CLI runs."""
    directory = tmp_path_factory.mktemp("obs-dataset") / "data"
    assert main(["synthesize", str(directory),
                 "--scale", SCALE, "--seed", SEED]) == 0
    return directory
