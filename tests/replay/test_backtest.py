"""Replay engine + backtest scorecard over the demo history."""

import json

import pytest

from repro.replay import (
    BacktestConfig,
    OnsetEvent,
    ReplayEngine,
    ReplayPacer,
    VirtualClock,
    extract_incidents,
    run_backtest,
)
from repro.results import validate_result_dict
from repro.results.render import render_text


class TestReplayEngine:
    def test_demo_history_fires_every_default_rule(self, demo_records):
        outcome = ReplayEngine().replay(demo_records)
        assert outcome.records == len(demo_records)
        fired = {alert.rule for alert in outcome.alerts}
        assert fired == {
            "xid79-fallen-off-bus",
            "xid119-gsp-repeat",
            "dbe-remap-chain",
            "uncontained-burst",
            "persistence-tail",
        }
        assert outcome.onsets > 0
        assert outcome.alarms > 0
        assert outcome.time_min < outcome.time_max
        assert len(outcome.serials) > 0

    def test_repeated_sessions_are_identical(self, demo_records):
        first = ReplayEngine().replay(demo_records)
        second = ReplayEngine().replay(demo_records)
        assert first.alerts == second.alerts
        assert first.onset_events == second.onset_events
        assert first.serials == second.serials

    def test_store_stream_matches_log_stream(self, demo_store, demo_records):
        from_store = ReplayEngine().replay(demo_store.query())
        from_logs = ReplayEngine().replay(demo_records)
        assert from_store.alerts == from_logs.alerts
        assert from_store.records == from_logs.records

    def test_paced_replay_reports_wall_time(self, demo_records):
        clock = VirtualClock()
        pacer = ReplayPacer(
            100.0, monotonic=clock.monotonic, sleep=clock.sleep
        )
        outcome = ReplayEngine(pacer=pacer).replay(demo_records)
        # 100x compression: wall time ~ span / 100 on the virtual clock.
        assert outcome.wall_seconds == pytest.approx(
            outcome.span_seconds / 100.0, rel=0.01
        )
        assert outcome.speedup == pytest.approx(100.0, rel=0.01)


class TestIncidents:
    def _event(self, t, node="gpua001", xid=79):
        return OnsetEvent(time=t, node_id=node, pci_bus="0000:07:00", xid=xid)

    def test_merges_per_node_episodes(self):
        events = [
            self._event(0.0),
            self._event(100.0),            # same episode
            self._event(5_000.0),          # > merge gap: new episode
            self._event(50.0, node="gpub002"),
            self._event(10.0, xid=31),     # not the critical code
        ]
        incidents = extract_incidents(
            events, critical_xid=79, merge_seconds=3_600.0
        )
        assert [(i.node_id, i.time, i.n_onsets) for i in incidents] == [
            ("gpua001", 0.0, 2),
            ("gpub002", 50.0, 1),
            ("gpua001", 5_000.0, 1),
        ]
        assert incidents[0].last_time == 100.0

    def test_no_critical_onsets_no_incidents(self):
        assert extract_incidents(
            [self._event(0.0, xid=31)], critical_xid=79, merge_seconds=60.0
        ) == ()


class TestBacktest:
    @pytest.fixture(scope="class")
    def scorecard(self, demo_store):
        return run_backtest(
            lambda: demo_store.query(),
            BacktestConfig(),
            source_label="store:demo",
            source_fingerprint=demo_store.content_hash(),
        )

    def test_scorecard_is_schema_valid(self, scorecard):
        assert validate_result_dict(scorecard.to_dict()) == []
        assert scorecard.experiment_id == "replay.backtest"

    def test_ground_truth_and_alerts_scored(self, scorecard):
        assert scorecard.value("incidents") > 0
        assert scorecard.value("alerts_total") > 0
        # The drain-node rule fires on the critical code itself, so every
        # incident is recalled.
        assert scorecard.value("incident_recall") == 1.0
        rules_table = scorecard.table("Per-rule alert scorecard")
        by_rule = {row[0]: row for row in rules_table.rows}
        assert by_rule["xid79-fallen-off-bus"][3] == 1.0  # precision

    def test_predictor_sweep_present(self, scorecard):
        assert scorecard.value("predictor_runs_train") > 0
        assert scorecard.value("predictor_runs_test") > 0
        pr = scorecard.table("Predictor PR curve")
        assert len(pr.rows) == 19  # the fixed threshold grid
        assert 0.0 <= scorecard.value("predictor_average_precision") <= 1.0

    def test_manifest_is_reproducible_provenance(self, scorecard, demo_store):
        manifest = scorecard.manifest
        assert manifest.run_id.startswith("replay-")
        assert manifest.engine == "replay"
        assert manifest.workers is None  # never part of the identity
        assert manifest.config_hashes["source"] == demo_store.content_hash()
        # Event time, not wall time.
        assert manifest.created_unix == scorecard_time_max(demo_store)

    def test_renderer_registered(self, scorecard):
        text = render_text(scorecard)
        assert "Per-rule alert scorecard" in text
        assert "false alarms" in text

    def test_json_round_trip(self, scorecard):
        from repro.results import ExperimentResult

        payload = scorecard.render_json()
        restored = ExperimentResult.from_json(payload)
        assert restored.render_json() == payload
        assert json.loads(payload)["schema"] == "repro.results/1"


def scorecard_time_max(store):
    return store.time_span[1]
