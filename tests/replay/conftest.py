"""Replay fixtures: the demo trace as logs, records, and a built store."""

from __future__ import annotations

import pytest

from repro.fleet import LiveLogEmitter
from repro.fleet.demo import demo_trace
from repro.pipeline import FileSetSource, extract_records
from repro.store import EventStore


@pytest.fixture(scope="session")
def demo_logs_dir(tmp_path_factory):
    """The two-day demo trace written flat-out as per-node log files."""
    directory = tmp_path_factory.mktemp("replay-demo-logs")
    LiveLogEmitter.from_trace(demo_trace(seed=11), directory, seed=11).run()
    return directory


@pytest.fixture(scope="session")
def demo_records(demo_logs_dir):
    """The merged, time-ordered record stream of the demo logs."""
    return extract_records(FileSetSource(demo_logs_dir), workers=1)


@pytest.fixture(scope="session")
def demo_store(demo_logs_dir, tmp_path_factory):
    """The demo history ingested into a columnar store."""
    directory = tmp_path_factory.mktemp("replay-demo-store")
    store = EventStore.create(directory / "events")
    store.ingest(FileSetSource(demo_logs_dir), workers=1)
    return store
