"""Virtual clock and pacer: wall time only paces, never decides."""

import pytest

from repro.replay import ReplayPacer, VirtualClock


class TestVirtualClock:
    def test_sleep_advances_instead_of_blocking(self):
        clock = VirtualClock(start=100.0)
        assert clock.monotonic() == 100.0
        clock.sleep(2.5)
        assert clock.monotonic() == 102.5
        assert clock.total_slept == 2.5

    def test_negative_sleep_is_a_no_op(self):
        clock = VirtualClock()
        clock.sleep(-1.0)
        assert clock.monotonic() == 0.0

    def test_advance_rejects_backward_time(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestReplayPacer:
    def test_unbounded_never_waits(self):
        clock = VirtualClock()
        pacer = ReplayPacer(None, monotonic=clock.monotonic, sleep=clock.sleep)
        for t in (0.0, 1e6, 2e6):
            pacer.wait_until(t)
        assert clock.total_slept == 0.0
        assert pacer.unbounded

    def test_infinite_speed_means_unbounded(self):
        assert ReplayPacer(float("inf")).unbounded

    def test_paces_event_time_at_speed(self):
        clock = VirtualClock()
        pacer = ReplayPacer(10.0, monotonic=clock.monotonic, sleep=clock.sleep)
        pacer.wait_until(0.0)    # anchors, no wait
        pacer.wait_until(10.0)   # 10 sim seconds -> 1 wall second
        pacer.wait_until(30.0)   # +20 sim -> +2 wall
        assert clock.total_slept == pytest.approx(3.0)
        assert pacer.waited == pytest.approx(3.0)

    def test_no_wait_when_already_late(self):
        clock = VirtualClock()
        pacer = ReplayPacer(1.0, monotonic=clock.monotonic, sleep=clock.sleep)
        pacer.wait_until(0.0)
        clock.advance(100.0)     # wall time ran ahead of the stream
        pacer.wait_until(50.0)   # due 50 s ago: deliver immediately
        assert clock.total_slept == 0.0

    def test_regression_reanchors_instead_of_blocking(self):
        clock = VirtualClock()
        pacer = ReplayPacer(1.0, monotonic=clock.monotonic, sleep=clock.sleep)
        pacer.wait_until(1_000.0)
        pacer.wait_until(0.0)     # a seek back: re-anchor, no wait
        assert clock.total_slept == 0.0
        pacer.wait_until(5.0)     # and pacing resumes from the new anchor
        assert clock.total_slept == pytest.approx(5.0)

    def test_rejects_non_positive_speed(self):
        with pytest.raises(ValueError):
            ReplayPacer(0.0)
        with pytest.raises(ValueError):
            ReplayPacer(-2.0)
