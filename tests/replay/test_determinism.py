"""The subsystem's headline property: scorecards are byte-identical
across replay speeds, ingest worker counts, and repeated runs.

Speed factors run under a :class:`VirtualClock`, so even the 1x "real
time" pass of a two-day history completes instantly while exercising
the exact pacing arithmetic a wall-clock replay would.
"""

import pytest

from repro.pipeline import FileSetSource
from repro.replay import BacktestConfig, ReplayPacer, VirtualClock, run_backtest
from repro.store import EventStore


def _scorecard_bytes(store, speed):
    clock = VirtualClock()
    pacer = ReplayPacer(speed, monotonic=clock.monotonic, sleep=clock.sleep)
    result = run_backtest(
        lambda: store.query(),
        BacktestConfig(),
        pacer=pacer,
        source_label="store:demo",
        source_fingerprint=store.content_hash(),
    )
    return result.render_json().encode()


class TestByteIdentity:
    def test_identical_across_speed_factors(self, demo_store):
        unbounded = _scorecard_bytes(demo_store, None)
        assert _scorecard_bytes(demo_store, 100.0) == unbounded
        assert _scorecard_bytes(demo_store, 1.0) == unbounded

    def test_identical_across_repeated_runs(self, demo_store):
        assert _scorecard_bytes(demo_store, None) == _scorecard_bytes(
            demo_store, None
        )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_identical_across_ingest_worker_counts(
        self, demo_logs_dir, demo_store, tmp_path, workers
    ):
        store = EventStore.create(tmp_path / f"events-w{workers}")
        store.ingest(FileSetSource(demo_logs_dir), workers=workers)
        assert store.content_hash() == demo_store.content_hash()
        assert _scorecard_bytes(store, None) == _scorecard_bytes(
            demo_store, None
        )

    def test_windowed_cursor_matches_flat_query(self, demo_store):
        from repro.store import ReplayCursor

        def cursor_factory():
            return ReplayCursor(
                demo_store, window_seconds=3_600.0
            ).iter_records()

        windowed = run_backtest(
            cursor_factory,
            BacktestConfig(),
            source_label="store:demo",
            source_fingerprint=demo_store.content_hash(),
        )
        flat = run_backtest(
            lambda: demo_store.query(),
            BacktestConfig(),
            source_label="store:demo",
            source_fingerprint=demo_store.content_hash(),
        )
        assert windowed.render_json() == flat.render_json()
