"""Profile variants and generative counterfactuals."""

import pytest

from repro.cluster import build_delta_cluster
from repro.faults import AMPERE_CALIBRATION, FaultInjector, InjectorConfig
from repro.faults.variants import (
    burned_in_profile,
    hardened_peripherals_profile,
    profile_variant,
)
from repro.faults.xid import Xid


class TestProfileVariant:
    def test_count_scaling(self):
        variant = profile_variant(
            AMPERE_CALIBRATION, count_scales={Xid.GSP: 0.1}
        )
        assert variant.xids[Xid.GSP].count == pytest.approx(214, abs=1)
        assert variant.xids[Xid.MMU].count == AMPERE_CALIBRATION.xids[Xid.MMU].count

    def test_original_untouched(self):
        profile_variant(AMPERE_CALIBRATION, count_scales={Xid.GSP: 0.0})
        assert AMPERE_CALIBRATION.xids[Xid.GSP].count == 2_136

    def test_drop_prunes_kernel_transitions(self):
        variant = profile_variant(
            AMPERE_CALIBRATION, drop_xids={Xid.UNCONTAINED: True}
        )
        assert Xid.UNCONTAINED not in variant.xids
        rrf_targets = {t.target for t in variant.kernel[Xid.RRF].transitions}
        assert Xid.UNCONTAINED not in rrf_targets
        assert Xid.CONTAINED in rrf_targets

    def test_zero_scale_removes_code(self):
        variant = profile_variant(
            AMPERE_CALIBRATION, count_scales={Xid.NVLINK: 0.0}
        )
        assert Xid.NVLINK not in variant.xids
        assert Xid.NVLINK not in variant.kernel

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            profile_variant(AMPERE_CALIBRATION, count_scales={Xid.GSP: -1.0})

    def test_name_suffix(self):
        assert profile_variant(AMPERE_CALIBRATION).name.endswith("-variant")


class TestScenarioProfiles:
    def test_burned_in_removes_offender_volume(self):
        variant = burned_in_profile(AMPERE_CALIBRATION)
        # Uncontained errors were 100% offender-generated: gone entirely.
        assert Xid.UNCONTAINED not in variant.xids
        # MMU keeps its non-offender (65%-of-hardware + workload) share.
        assert variant.xids[Xid.MMU].count < AMPERE_CALIBRATION.xids[Xid.MMU].count
        assert variant.xids[Xid.MMU].offenders is None

    def test_hardened_drops_peripheral_codes(self):
        variant = hardened_peripherals_profile(AMPERE_CALIBRATION)
        for xid in (Xid.GSP, Xid.PMU_SPI, Xid.NVLINK):
            assert xid not in variant.xids
        assert Xid.MMU in variant.xids


class TestGenerativeCounterfactual:
    def test_variant_injects_cleanly(self, delta_cluster):
        variant = hardened_peripherals_profile(AMPERE_CALIBRATION)
        injector = FaultInjector(variant, InjectorConfig(scale=0.05, seed=4))
        trace = injector.generate(delta_cluster)
        xids = {int(e.xid) for e in trace}
        assert 119 not in xids and 74 not in xids and 95 not in xids
        assert 31 in xids

    def test_burned_in_mtbe_improvement_matches_paper_scale(self, delta_cluster):
        """The generative counterfactual lands near the paper's 3x."""
        base = AMPERE_CALIBRATION.total_count()
        burned = burned_in_profile(AMPERE_CALIBRATION).total_count()
        # Removing offender volume leaves ~22k of 63k errors -> ~2.9x MTBE.
        assert base / burned == pytest.approx(3.0, abs=0.6)

    def test_hardened_total_matches_scenario2(self):
        hardened = hardened_peripherals_profile(AMPERE_CALIBRATION).total_count()
        # Paper scenario 2: ~19k errors remaining -> MTBE ~223 node-hours.
        mtbe = AMPERE_CALIBRATION.window_node_hours / hardened
        assert mtbe == pytest.approx(223.0, rel=0.20)
