"""Chain walking: branching statistics must match the kernel."""

import numpy as np
import pytest

from repro.faults.calibration import (
    AMPERE_KERNEL,
    DelayModel,
    KernelRow,
    Transition,
)
from repro.faults.chains import MAX_CHAIN_LENGTH, expected_chain_length, walk_chain
from repro.faults.xid import Xid


class TestWalkChain:
    def test_terminal_code_yields_single_step(self):
        rng = np.random.default_rng(0)
        steps = walk_chain(Xid.FALLEN_OFF_BUS, AMPERE_KERNEL, rng)
        assert len(steps) == 1
        assert steps[0].xid is Xid.FALLEN_OFF_BUS
        assert steps[0].inoperable  # FOB row: inoperable_prob 1.0

    def test_unknown_code_is_terminal(self):
        rng = np.random.default_rng(0)
        steps = walk_chain(Xid.XID_136, {}, rng)
        assert len(steps) == 1 and not steps[0].inoperable

    def test_root_has_zero_delay(self):
        rng = np.random.default_rng(0)
        steps = walk_chain(Xid.GSP, AMPERE_KERNEL, rng)
        assert steps[0].delay_after_prev == 0.0
        assert not steps[0].on_peer

    def test_pmu_branching_statistics(self):
        rng = np.random.default_rng(42)
        mmu_follow = 0
        pmu_follow = 0
        n = 20_000
        for _ in range(n):
            steps = walk_chain(Xid.PMU_SPI, AMPERE_KERNEL, rng)
            if len(steps) > 1:
                if steps[1].xid is Xid.MMU:
                    mmu_follow += 1
                elif steps[1].xid is Xid.PMU_SPI:
                    pmu_follow += 1
        assert mmu_follow / n == pytest.approx(0.82, abs=0.01)
        assert pmu_follow / n == pytest.approx(0.18, abs=0.01)

    def test_dbe_tree_statistics(self):
        rng = np.random.default_rng(43)
        outcomes = {"rre": 0, "rrf_contained": 0, "rrf_uncontained": 0,
                    "rrf_inoperable": 0, "none": 0}
        n = 30_000
        for _ in range(n):
            steps = walk_chain(Xid.DBE, AMPERE_KERNEL, rng)
            if len(steps) == 1:
                outcomes["none"] += 1
            elif steps[1].xid is Xid.RRE:
                outcomes["rre"] += 1
            elif steps[1].xid is Xid.RRF:
                if len(steps) > 2 and steps[2].xid is Xid.CONTAINED:
                    outcomes["rrf_contained"] += 1
                elif len(steps) > 2 and steps[2].xid is Xid.UNCONTAINED:
                    outcomes["rrf_uncontained"] += 1
                else:
                    outcomes["rrf_inoperable"] += 1
        assert outcomes["rre"] / n == pytest.approx(0.50, abs=0.01)
        # Overall alleviation: RRE success + containment after RRF ~ 70.6%.
        alleviated = (outcomes["rre"] + outcomes["rrf_contained"]) / n
        assert alleviated == pytest.approx(0.706, abs=0.015)

    def test_gsp_inoperable_rate(self):
        rng = np.random.default_rng(44)
        inoperable = 0
        n = 20_000
        for _ in range(n):
            steps = walk_chain(Xid.GSP, AMPERE_KERNEL, rng)
            if steps[-1].inoperable:
                inoperable += 1
        # Per chain: recurrences re-draw the terminal fate, so nearly every
        # GSP chain ends inoperable (only PMU-spill chains escape).
        assert inoperable / n == pytest.approx(0.99, abs=0.01)

    def test_runaway_kernel_raises(self):
        kernel = {
            Xid.MMU: KernelRow(
                Xid.MMU,
                transitions=(Transition(Xid.MMU, 1.0, DelayModel(7, 8)),),
            )
        }
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError):
            walk_chain(Xid.MMU, kernel, rng)

    def test_chain_never_exceeds_cap(self):
        rng = np.random.default_rng(45)
        for _ in range(2_000):
            assert len(walk_chain(Xid.NVLINK, AMPERE_KERNEL, rng)) <= MAX_CHAIN_LENGTH


class TestExpectedChainLength:
    def test_nvlink_geometric_length(self):
        # Self-continuation 0.66 => expected length 1/(1-0.66) ~ 2.94.
        rng = np.random.default_rng(46)
        length = expected_chain_length(Xid.NVLINK, AMPERE_KERNEL, 20_000, rng)
        assert length == pytest.approx(1.0 / 0.34, rel=0.03)

    def test_terminal_code_length_one(self):
        rng = np.random.default_rng(47)
        assert expected_chain_length(Xid.CONTAINED, AMPERE_KERNEL, 100, rng) == 1.0
