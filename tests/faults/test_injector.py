"""Fault injector: count calibration, placement, separation guarantees."""

from collections import Counter

import numpy as np
import pytest

from repro.faults.calibration import AMPERE_CALIBRATION, H100_CALIBRATION
from repro.faults.injector import (
    COALESCE_GUARD_SECONDS,
    FaultInjector,
    InjectorConfig,
)
from repro.faults.xid import Xid


@pytest.fixture(scope="module")
def ampere_trace(delta_cluster):
    injector = FaultInjector(AMPERE_CALIBRATION, InjectorConfig(scale=0.05, seed=11))
    return injector.generate(delta_cluster)


class TestCounts:
    def test_totals_match_scaled_calibration(self, ampere_trace):
        counts = Counter(int(e.xid) for e in ampere_trace)
        targets = AMPERE_CALIBRATION.scaled_counts(0.05)
        for xid, target in targets.items():
            if target < 20:
                continue  # tiny rows are dominated by chain stochasticity
            assert counts[int(xid)] == pytest.approx(target, rel=0.15), xid

    def test_deterministic_given_seed(self, delta_cluster):
        config = InjectorConfig(scale=0.01, seed=5)
        t1 = FaultInjector(AMPERE_CALIBRATION, config).generate(delta_cluster)
        t2 = FaultInjector(AMPERE_CALIBRATION, config).generate(delta_cluster)
        assert len(t1) == len(t2)
        assert all(
            a.time == b.time and a.gpu_key == b.gpu_key and a.xid == b.xid
            for a, b in zip(t1.events, t2.events)
        )

    def test_different_seed_differs(self, delta_cluster):
        t1 = FaultInjector(AMPERE_CALIBRATION, InjectorConfig(scale=0.01, seed=5)).generate(delta_cluster)
        t2 = FaultInjector(AMPERE_CALIBRATION, InjectorConfig(scale=0.01, seed=6)).generate(delta_cluster)
        times1 = [e.time for e in t1.events[:50]]
        times2 = [e.time for e in t2.events[:50]]
        assert times1 != times2

    def test_poisson_counts_mode(self, delta_cluster):
        config = InjectorConfig(scale=0.02, seed=5, deterministic_counts=False)
        trace = FaultInjector(AMPERE_CALIBRATION, config).generate(delta_cluster)
        counts = Counter(int(e.xid) for e in trace)
        target = AMPERE_CALIBRATION.scaled_counts(0.02)[Xid.UNCONTAINED]
        assert counts[95] == pytest.approx(target, rel=0.25)

    def test_workload_mmu_exclusion_reduces_mmu(self, delta_cluster):
        base = FaultInjector(AMPERE_CALIBRATION, InjectorConfig(scale=0.02, seed=5))
        reduced = FaultInjector(
            AMPERE_CALIBRATION,
            InjectorConfig(scale=0.02, seed=5, workload_mmu_external=True),
        )
        budget = reduced.workload_mmu_budget()
        assert budget > 0
        assert reduced.root_counts()[Xid.MMU] + budget == pytest.approx(
            base.root_counts()[Xid.MMU], rel=0.001
        )


class TestPlacement:
    def test_events_confined_to_ampere_nodes(self, ampere_trace, delta_cluster):
        ampere_ids = {n.node_id for n in delta_cluster.ampere_nodes}
        assert all(e.node_id in ampere_ids for e in ampere_trace)

    def test_events_within_window(self, ampere_trace):
        assert all(0 <= e.time < ampere_trace.window_seconds for e in ampere_trace)
        assert all(e.end_time <= ampere_trace.window_seconds for e in ampere_trace)

    def test_uncontained_offender_concentration(self, ampere_trace):
        events = ampere_trace.events_of(Xid.UNCONTAINED)
        per_gpu = Counter(e.gpu_key for e in events)
        top_share = per_gpu.most_common(1)[0][1] / len(events)
        # Section 4.4.3: one GPU contributed 99% of uncontained errors.
        assert top_share > 0.95

    def test_uncontained_limited_to_few_gpus(self, ampere_trace):
        # 4 offender GPUs plus the rare RRF containment-failure chain events.
        events = ampere_trace.events_of(Xid.UNCONTAINED)
        spontaneous = [e for e in events if e.is_root]
        assert len({e.gpu_key for e in spontaneous}) <= 4

    def test_gsp_spread_across_gpus(self, ampere_trace):
        events = ampere_trace.events_of(Xid.GSP)
        per_gpu = Counter(e.gpu_key for e in events)
        assert per_gpu.most_common(1)[0][1] < len(events) * 0.1


class TestSeparation:
    def test_same_gpu_same_xid_events_never_overlap(self, ampere_trace):
        by_group = {}
        for event in ampere_trace:
            by_group.setdefault((event.gpu_key, event.xid), []).append(event)
        for group in by_group.values():
            group.sort(key=lambda e: e.time)
            for previous, current in zip(group, group[1:]):
                gap = current.time - previous.end_time
                assert gap >= COALESCE_GUARD_SECONDS - 1e-6

    def test_chain_events_ordered_in_time(self, ampere_trace):
        # Within one chain, each GPU's sub-sequence advances in time (fanout
        # incidents interleave several per-GPU sub-chains).
        for chain in ampere_trace.chains().values():
            per_gpu = {}
            for event in chain:
                per_gpu.setdefault(event.gpu_key, []).append(event.time)
            for times in per_gpu.values():
                assert times == sorted(times)


class TestChainsInTrace:
    def test_pmu_chains_produce_mmu_followups(self, delta_cluster):
        injector = FaultInjector(AMPERE_CALIBRATION, InjectorConfig(scale=0.5, seed=9))
        trace = injector.generate(delta_cluster)
        chains = trace.chains()
        pmu_roots = [
            chain for chain in chains.values() if chain[0].xid is Xid.PMU_SPI
        ]
        assert pmu_roots, "expected PMU SPI chains at half scale"
        # The *first* transition out of PMU SPI is MMU with probability 0.82
        # (eventually every PMU chain reaches MMU because recurrences retry).
        first_is_mmu = [
            chain for chain in pmu_roots if len(chain) > 1 and chain[1].xid is Xid.MMU
        ]
        assert len(first_is_mmu) / len(pmu_roots) == pytest.approx(0.82, abs=0.17)

    def test_nvlink_fanout_spans_gpus_on_same_node(self, ampere_trace):
        multi = [
            chain
            for chain in ampere_trace.chains().values()
            if chain and chain[0].xid is Xid.NVLINK
            and len({e.gpu_key for e in chain}) >= 2
        ]
        assert multi, "expected at least one multi-GPU NVLink incident"
        for chain in multi:
            nodes = {e.node_id for e in chain}
            assert len(nodes) == 1  # NVLink is intra-node only


class TestH100Injection:
    def test_h100_events_on_hopper_nodes(self, delta_cluster):
        injector = FaultInjector(H100_CALIBRATION, InjectorConfig(scale=1.0, seed=2))
        trace = injector.generate(delta_cluster)
        hopper = {n.node_id for n in delta_cluster.hopper_nodes}
        assert trace.events and all(e.node_id in hopper for e in trace)

    def test_h100_has_no_rre(self, delta_cluster):
        injector = FaultInjector(H100_CALIBRATION, InjectorConfig(scale=1.0, seed=2))
        trace = injector.generate(delta_cluster)
        assert not trace.events_of(Xid.RRE)

    def test_empty_population_rejected(self, delta_cluster):
        from repro.cluster.inventory import ClusterInventory

        cpu_only = ClusterInventory(delta_cluster.cpu_nodes)
        injector = FaultInjector(AMPERE_CALIBRATION, InjectorConfig(scale=0.01))
        with pytest.raises(ValueError):
            injector.generate(cpu_only)
