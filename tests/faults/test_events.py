"""FaultTrace container semantics."""

import pytest

from repro.faults.events import ErrorEvent, FaultTrace, filter_window, gpu_for_event
from repro.faults.xid import Xid


def _event(t, node="gpua001", bus="0000:07:00", xid=Xid.MMU, **kw):
    return ErrorEvent(time=t, node_id=node, pci_bus=bus, xid=xid, **kw)


class TestErrorEvent:
    def test_end_time(self):
        event = _event(10.0, persistence=5.0)
        assert event.end_time == 15.0

    def test_root_flag(self):
        assert _event(0.0).is_root
        assert not _event(0.0, chain_pos=2).is_root

    def test_shifted(self):
        assert _event(10.0).shifted(5.0).time == 15.0

    def test_gpu_key(self):
        assert _event(0.0).gpu_key == ("gpua001", "0000:07:00")


class TestFaultTrace:
    def test_events_sorted_on_construction(self):
        trace = FaultTrace([_event(5.0), _event(1.0)], window_seconds=10.0)
        assert [e.time for e in trace] == [1.0, 5.0]

    def test_counts_by_xid(self):
        trace = FaultTrace(
            [_event(1.0), _event(2.0, xid=Xid.GSP), _event(3.0)], window_seconds=10.0
        )
        counts = trace.counts_by_xid()
        assert counts[Xid.MMU] == 2 and counts[Xid.GSP] == 1

    def test_chains_grouped_and_ordered(self):
        trace = FaultTrace(
            [
                _event(2.0, xid=Xid.MMU, chain_id=1, chain_pos=1),
                _event(1.0, xid=Xid.PMU_SPI, chain_id=1, chain_pos=0),
                _event(0.5, chain_id=2, chain_pos=0),
            ],
            window_seconds=10.0,
        )
        chains = trace.chains()
        assert [e.xid for e in chains[1]] == [Xid.PMU_SPI, Xid.MMU]
        assert len(chains[2]) == 1

    def test_merge_respaces_chain_ids(self):
        t1 = FaultTrace([_event(1.0, chain_id=0)], window_seconds=10.0)
        t2 = FaultTrace([_event(2.0, chain_id=0)], window_seconds=10.0)
        merged = t1.merged_with(t2)
        assert len({e.chain_id for e in merged}) == 2

    def test_merge_window_mismatch_rejected(self):
        t1 = FaultTrace([], window_seconds=10.0)
        t2 = FaultTrace([], window_seconds=20.0)
        with pytest.raises(ValueError):
            t1.merged_with(t2)

    def test_inoperable_filter(self):
        trace = FaultTrace(
            [_event(1.0, inoperable=True), _event(2.0)], window_seconds=10.0
        )
        assert len(trace.inoperable_events()) == 1

    def test_events_on_gpu(self):
        trace = FaultTrace(
            [_event(1.0), _event(2.0, bus="0000:46:00")], window_seconds=10.0
        )
        assert len(trace.events_on_gpu("gpua001", "0000:07:00")) == 1


class TestHelpers:
    def test_filter_window_half_open(self):
        events = [_event(t) for t in (0.0, 5.0, 10.0)]
        assert [e.time for e in filter_window(events, 0.0, 10.0)] == [0.0, 5.0]

    def test_gpu_for_event(self, small_cluster):
        node = small_cluster.gpu_nodes[0]
        gpu = node.gpus[0]
        event = _event(0.0, node=node.node_id, bus=gpu.pci_bus)
        assert gpu_for_event(event, small_cluster.gpus) is gpu

    def test_gpu_for_event_missing(self, small_cluster):
        event = _event(0.0, node="nope", bus="0000:00:00")
        with pytest.raises(KeyError):
            gpu_for_event(event, small_cluster.gpus)
