"""Calibration constants: internal consistency against the paper's tables."""

import numpy as np
import pytest

from repro.faults.calibration import (
    AMPERE_CALIBRATION,
    AMPERE_KERNEL,
    H100_CALIBRATION,
    PAPER_TABLE2,
    PAPER_TOTAL_ERRORS,
    KernelRow,
    OffenderSkew,
    PersistenceModel,
    RepairModelParams,
    Transition,
    DelayModel,
    expected_totals,
    solve_root_counts,
)
from repro.faults.xid import Xid
from repro.util.stats import lognormal_from_mean_p50


class TestAmpereProfile:
    def test_total_count_matches_paper(self):
        assert AMPERE_CALIBRATION.total_count() == PAPER_TOTAL_ERRORS

    def test_reference_population(self):
        assert AMPERE_CALIBRATION.reference_node_count == 206
        assert AMPERE_CALIBRATION.window_days == 855.0

    def test_mtbe_identity_per_code(self):
        # count x system-MTBE == window hours, for every Table-1 row.
        for xid, cal in AMPERE_CALIBRATION.xids.items():
            mtbe = AMPERE_CALIBRATION.mtbe_all_nodes_hours(xid)
            assert mtbe * cal.count == pytest.approx(855.0 * 24.0)
            # Consistency with the paper's printed MTBE (rounding tolerance).
            assert mtbe == pytest.approx(cal.paper_mtbe_all_nodes_hours, rel=0.02)

    def test_per_node_mtbe_is_206x_system(self):
        for cal in AMPERE_CALIBRATION.xids.values():
            assert cal.paper_mtbe_per_node_hours == pytest.approx(
                cal.paper_mtbe_all_nodes_hours * 206, rel=0.02
            )

    def test_scaled_counts_linear(self):
        half = AMPERE_CALIBRATION.scaled_counts(0.5)
        assert half[Xid.UNCONTAINED] == pytest.approx(38_905 / 2)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            AMPERE_CALIBRATION.scaled_counts(0.0)


class TestKernel:
    def test_rows_probability_mass_valid(self):
        for row in AMPERE_KERNEL.values():
            assert row.terminal_prob >= -1e-9

    def test_gsp_row_matches_figure5(self):
        row = AMPERE_KERNEL[Xid.GSP]
        to_pmu = [t for t in row.transitions if t.target is Xid.PMU_SPI]
        assert len(to_pmu) == 1 and to_pmu[0].prob == pytest.approx(0.01)
        # 0.99 of GSP outcomes are recurrence-or-inoperable.
        recurrence = sum(t.prob for t in row.transitions if t.target is Xid.GSP)
        assert recurrence + row.inoperable_prob == pytest.approx(0.99)

    def test_pmu_row_matches_figure5(self):
        row = AMPERE_KERNEL[Xid.PMU_SPI]
        probs = {t.target: t.prob for t in row.transitions}
        assert probs[Xid.MMU] == pytest.approx(0.82)
        assert probs[Xid.PMU_SPI] == pytest.approx(0.18)

    def test_dbe_row_matches_figure7(self):
        row = AMPERE_KERNEL[Xid.DBE]
        probs = {t.target: t.prob for t in row.transitions}
        assert probs[Xid.RRE] == pytest.approx(0.50)

    def test_overall_dbe_alleviation_near_paper(self):
        dbe = {t.target: t.prob for t in AMPERE_KERNEL[Xid.DBE].transitions}
        rrf = {t.target: t.prob for t in AMPERE_KERNEL[Xid.RRF].transitions}
        alleviated = dbe[Xid.RRE] + dbe[Xid.RRF] * rrf[Xid.CONTAINED]
        assert alleviated == pytest.approx(0.706, abs=0.02)

    def test_same_code_repeat_delays_exceed_coalescing_window(self):
        for row in AMPERE_KERNEL.values():
            for transition in row.transitions:
                if transition.target is row.xid:
                    assert transition.delay.low > 5.0

    def test_overfull_row_rejected(self):
        with pytest.raises(ValueError):
            KernelRow(
                Xid.MMU,
                transitions=(
                    Transition(Xid.MMU, 0.7, DelayModel(7, 9)),
                    Transition(Xid.DBE, 0.6, DelayModel(1, 2)),
                ),
            )


class TestRootSolving:
    def test_roots_reproduce_totals(self):
        totals = {xid: float(c.count) for xid, c in AMPERE_CALIBRATION.xids.items()}
        roots = solve_root_counts(totals, AMPERE_KERNEL)
        reproduced = expected_totals(roots, AMPERE_KERNEL)
        for xid, target in totals.items():
            assert reproduced[xid] == pytest.approx(target, rel=0.01), xid

    def test_roots_nonnegative(self):
        totals = {xid: float(c.count) for xid, c in AMPERE_CALIBRATION.xids.items()}
        for value in solve_root_counts(totals, AMPERE_KERNEL).values():
            assert value >= 0.0

    def test_gsp_to_pmu_inflow_is_about_21_cases(self):
        # Paper: 21 of 2,136 GSP errors spilled into PMU SPI errors.
        assert 2_136 * 0.01 == pytest.approx(21, abs=1)


class TestPersistenceModels:
    @pytest.mark.parametrize("xid", list(AMPERE_CALIBRATION.xids))
    def test_sampled_moments_near_paper(self, xid):
        cal = AMPERE_CALIBRATION.xids[xid]
        rng = np.random.default_rng(0)
        sample = cal.persistence.sample(rng, 120_000)
        assert np.median(sample) == pytest.approx(cal.paper_persistence_p50, rel=0.25)
        assert sample.mean() == pytest.approx(cal.paper_persistence_mean, rel=0.30)

    def test_uncontained_mean_exceeds_p95(self):
        # The Table-1 paradox the mixture must reproduce.
        cal = AMPERE_CALIBRATION.xids[Xid.UNCONTAINED]
        rng = np.random.default_rng(1)
        sample = cal.persistence.sample(rng, 200_000)
        assert sample.mean() > np.percentile(sample, 95)

    def test_durations_respect_cutoff(self):
        cal = AMPERE_CALIBRATION.xids[Xid.UNCONTAINED]
        rng = np.random.default_rng(2)
        assert cal.persistence.sample(rng, 50_000).max() <= 86_400.0

    def test_model_mean_property(self):
        model = PersistenceModel(
            body=lognormal_from_mean_p50(10.0, 5.0), tail_prob=0.0
        )
        assert model.mean == pytest.approx(10.0)


class TestOffenderSkew:
    def test_invalid_shares_rejected(self):
        with pytest.raises(ValueError):
            OffenderSkew(n_offenders=1, offender_share=1.5)
        with pytest.raises(ValueError):
            OffenderSkew(n_offenders=0, offender_share=0.5)

    def test_uncontained_offenders_match_section_4_2(self):
        skew = AMPERE_CALIBRATION.xids[Xid.UNCONTAINED].offenders
        # 4 GPUs with uncontained errors; one GPU contributed 99%.
        assert skew.n_offenders == 4
        assert skew.top_share == pytest.approx(0.99)


class TestRepairModel:
    def test_mean_near_paper_mttr(self):
        params = RepairModelParams()
        rng = np.random.default_rng(3)
        sample = params.sample_hours(rng, 300_000)
        assert sample.mean() == pytest.approx(0.3, abs=0.06)

    def test_tail_reaches_long_reboots(self):
        params = RepairModelParams()
        rng = np.random.default_rng(4)
        sample = params.sample_hours(rng, 300_000)
        # Figure 1's 23-hour case must be reachable but rare.
        assert sample.max() > 20.0
        assert np.mean(sample > 20.0) < 0.01

    def test_capped_at_48_hours(self):
        params = RepairModelParams()
        rng = np.random.default_rng(5)
        assert params.sample_hours(rng, 300_000).max() <= 48.0


class TestH100Profile:
    def test_event_budget_gives_4114_hour_mtbe(self):
        total = H100_CALIBRATION.total_count()
        mtbe = H100_CALIBRATION.window_node_hours / total
        assert total == 112
        assert mtbe == pytest.approx(4_114, rel=0.01)

    def test_no_rre_in_h100(self):
        # Section 6: DBE/RRF without RREs is the anomaly.
        assert Xid.RRE not in H100_CALIBRATION.xids
        assert H100_CALIBRATION.xids[Xid.DBE].count == 10
        assert H100_CALIBRATION.xids[Xid.RRF].count == 5

    def test_xid136_dominates(self):
        counts = {x: c.count for x, c in H100_CALIBRATION.xids.items()}
        assert max(counts, key=counts.get) is Xid.XID_136


class TestPaperTable2Constants:
    def test_probabilities_consistent(self):
        for xid, (failed, encountering, percent) in PAPER_TABLE2.items():
            assert failed / encountering * 100 == pytest.approx(percent, abs=0.02), xid

    def test_profile_uses_table2_probabilities(self):
        for xid, (_, _, percent) in PAPER_TABLE2.items():
            cal = AMPERE_CALIBRATION.xids[xid]
            assert cal.job_failure_prob == pytest.approx(percent / 100.0, abs=0.005)
