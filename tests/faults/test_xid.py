"""XID catalog invariants."""

from repro.faults.xid import (
    HARDWARE_MTBE_XIDS,
    MEMORY_MTBE_XIDS,
    STUDIED_XIDS,
    XID_CATALOG,
    RecoveryAction,
    Xid,
    XidCategory,
    studied,
    xids_in_category,
)


class TestCatalog:
    def test_every_code_catalogued(self):
        assert set(XID_CATALOG) == set(Xid)

    def test_table1_rows_are_studied(self):
        # The ten Table-1 codes.
        expected = {31, 48, 63, 64, 74, 79, 94, 95, 119, 122}
        assert {int(x) for x in STUDIED_XIDS} == expected

    def test_user_codes_excluded(self):
        assert not XID_CATALOG[Xid.GENERAL_SW].studied
        assert not XID_CATALOG[Xid.RESET_CHANNEL].studied

    def test_categories_match_paper_taxonomy(self):
        assert XID_CATALOG[Xid.GSP].category is XidCategory.HARDWARE
        assert XID_CATALOG[Xid.DBE].category is XidCategory.MEMORY
        assert XID_CATALOG[Xid.NVLINK].category is XidCategory.INTERCONNECT
        assert XID_CATALOG[Xid.XID_136].category is XidCategory.UNKNOWN

    def test_gsp_requires_node_reboot(self):
        # Figure 1: GSP errors required draining + full node reboot.
        assert XID_CATALOG[Xid.GSP].recovery is RecoveryAction.NODE_REBOOT
        assert XID_CATALOG[Xid.GSP].renders_gpu_inoperable

    def test_mtbe_comparison_sets_disjoint(self):
        assert not set(MEMORY_MTBE_XIDS) & set(HARDWARE_MTBE_XIDS)

    def test_uncontained_not_in_memory_comparison(self):
        # Section 4.2 (iii): uncontained errors excluded from the 30x ratio.
        assert Xid.UNCONTAINED not in MEMORY_MTBE_XIDS


class TestHelpers:
    def test_xids_in_category_sorted(self):
        memory = xids_in_category(XidCategory.MEMORY)
        assert list(memory) == sorted(memory, key=int)
        assert Xid.RRE in memory

    def test_studied_filter_preserves_order(self):
        assert studied([95, 13, 31]) == (Xid.UNCONTAINED, Xid.MMU)
