"""Calibration self-check diagnostics."""

import pytest

from repro.faults.calibration import AMPERE_CALIBRATION, H100_CALIBRATION
from repro.faults.diagnostics import check_calibration
from repro.faults.xid import Xid


@pytest.fixture(scope="module")
def report(delta_cluster):
    return check_calibration(AMPERE_CALIBRATION, scale=0.05, cluster=delta_cluster)


class TestAmpereCalibration:
    def test_kernel_consistent(self, report):
        assert report.kernel_consistent

    def test_all_measurable_codes_within_tolerance(self, report):
        assert report.within(0.15), report.render()

    def test_every_code_checked(self, report):
        assert {c.xid for c in report.checks} == set(AMPERE_CALIBRATION.xids)

    def test_render_flags_nothing(self, report):
        assert "<-- off" not in report.render()
        assert "delta-ampere" in report.render()

    def test_worst_is_a_measurable_code(self, report):
        worst = report.worst()
        assert worst is not None
        assert worst.expected >= 20


class TestH100Calibration:
    def test_h100_counts_realize(self, delta_cluster):
        report = check_calibration(H100_CALIBRATION, scale=1.0, cluster=delta_cluster)
        assert report.kernel_consistent
        xid136 = next(c for c in report.checks if c.xid is Xid.XID_136)
        assert xid136.realized == pytest.approx(70, abs=3)


class TestCountCheck:
    def test_relative_error(self, report):
        uncontained = next(c for c in report.checks if c.xid is Xid.UNCONTAINED)
        assert abs(uncontained.relative_error) < 0.05
