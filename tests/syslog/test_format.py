"""Syslog rendering: line shape, burst structure, determinism."""

import numpy as np
import pytest

from repro.core.parsing import parse_line
from repro.faults.events import ErrorEvent
from repro.faults.xid import Xid
from repro.syslog.format import (
    BURST_GAP_HIGH,
    BURST_GAP_LOW,
    XID_MESSAGES,
    burst_offsets,
    render_event_lines,
    render_line,
    render_trace,
)
from repro.util.timeutil import parse_timestamp


def _event(t=100.0, persistence=0.0, xid=Xid.GSP):
    return ErrorEvent(
        time=t, node_id="gpub042", pci_bus="0000:C7:00", xid=xid,
        persistence=persistence,
    )


class TestRenderLine:
    def test_contains_nvrm_marker_and_code(self):
        line = render_line(_event(), 100.0)
        assert "NVRM: Xid (PCI:0000:C7:00): 119," in line
        assert line.split(" ")[1] == "gpub042"

    def test_pid_rendering(self):
        assert "pid=4242," in render_line(_event(), 100.0, pid=4242)
        assert "pid='<unknown>'," in render_line(_event(), 100.0)

    def test_every_xid_has_template(self):
        for xid in Xid:
            assert xid in XID_MESSAGES
            line = render_line(_event(xid=xid), 50.0)
            assert f"): {int(xid)}," in line


class TestBurstStructure:
    def test_zero_persistence_single_line(self):
        lines = render_event_lines(_event(persistence=0.0))
        assert len(lines) == 1

    def test_burst_spans_exact_persistence(self):
        event = _event(persistence=30.0)
        lines = render_event_lines(event, seed=3)
        times = [parse_timestamp(line.split(" ")[0]) for line in lines]
        assert times[0] == pytest.approx(event.time, abs=0.001)
        assert times[-1] == pytest.approx(event.time + 30.0, abs=0.001)

    def test_burst_gaps_below_coalescing_window(self):
        event = _event(persistence=200.0)
        lines = render_event_lines(event, seed=3)
        times = sorted(parse_timestamp(line.split(" ")[0]) for line in lines)
        gaps = np.diff(times)
        assert gaps.max() < 5.0

    def test_burst_lines_identical_except_timestamp(self):
        lines = render_event_lines(_event(persistence=20.0), seed=3)
        bodies = {line.split(" ", 1)[1] for line in lines}
        assert len(bodies) == 1

    def test_deterministic_per_seed(self):
        event = _event(persistence=50.0)
        assert render_event_lines(event, seed=3) == render_event_lines(event, seed=3)
        assert render_event_lines(event, seed=3) != render_event_lines(event, seed=4)

    def test_tiny_persistence_two_lines(self):
        lines = render_event_lines(_event(persistence=0.12))
        assert len(lines) == 2


class TestBurstOffsets:
    def test_includes_zero_and_persistence(self):
        rng = np.random.default_rng(0)
        offsets = burst_offsets(47.3, rng)
        assert offsets[0] == 0.0
        assert offsets[-1] == pytest.approx(47.3)

    def test_gaps_bounded(self):
        rng = np.random.default_rng(0)
        offsets = burst_offsets(300.0, rng)
        gaps = np.diff(offsets)
        assert gaps.max() <= BURST_GAP_HIGH + 1e-9
        assert gaps.min() > 0.0

    def test_gap_parameters_stay_below_window(self):
        assert BURST_GAP_HIGH < 5.0
        assert 0 < BURST_GAP_LOW < BURST_GAP_HIGH


class TestRenderTrace:
    def test_round_trip_through_parser(self):
        events = [
            _event(10.0, persistence=1.0, xid=Xid.MMU),
            _event(100.0, persistence=0.0, xid=Xid.NVLINK),
        ]
        records = [parse_line(line) for line in render_trace(events, seed=1)]
        assert all(r is not None for r in records)
        xids = {r.xid for r in records}
        assert xids == {31, 74}

    def test_pid_map_by_event_index(self):
        events = [_event(10.0), _event(50.0)]
        lines = list(render_trace(events, seed=1, pids={1: 777}))
        assert "pid='<unknown>'" in lines[0]
        assert "pid=777" in lines[1]
