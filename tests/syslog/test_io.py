"""Noise generation and log file writing/reading."""

import pytest

from repro.core.parsing import parse_line
from repro.faults.events import ErrorEvent
from repro.faults.xid import Xid
from repro.syslog.noise import NoiseConfig, generate_noise_lines
from repro.syslog.reader import iter_log_lines, read_log_directory
from repro.syslog.format import render_trace
from repro.syslog.writer import write_node_logs


class TestNoise:
    def test_noise_never_parses_as_xid(self):
        lines = list(
            generate_noise_lines(["gpua001", "gpub001"], 500 * 3600.0,
                                 NoiseConfig(lines_per_node_hour=1.0, seed=1))
        )
        assert len(lines) > 500
        assert all(parse_line(line) is None for line in lines)

    def test_noise_volume_scales(self):
        few = list(generate_noise_lines(["n1"], 100 * 3600.0,
                                        NoiseConfig(lines_per_node_hour=0.5, seed=1)))
        many = list(generate_noise_lines(["n1"], 100 * 3600.0,
                                         NoiseConfig(lines_per_node_hour=5.0, seed=1)))
        assert len(many) > len(few) * 5

    def test_noise_attributed_to_requested_nodes(self):
        lines = list(generate_noise_lines(["nodeX"], 50 * 3600.0, NoiseConfig(seed=2)))
        assert all(line.split(" ")[1] == "nodeX" for line in lines)

    def test_deterministic(self):
        a = list(generate_noise_lines(["n1"], 3600.0 * 100, NoiseConfig(seed=3)))
        b = list(generate_noise_lines(["n1"], 3600.0 * 100, NoiseConfig(seed=3)))
        assert a == b


def _events():
    return [
        ErrorEvent(time=10.0, node_id="gpua001", pci_bus="0000:07:00", xid=Xid.MMU),
        ErrorEvent(time=20.0, node_id="gpub001", pci_bus="0000:46:00", xid=Xid.GSP,
                   persistence=12.0),
    ]


class TestWriterReader:
    def test_round_trip_plain(self, tmp_path):
        lines = list(render_trace(_events(), seed=1))
        paths = write_node_logs(lines, tmp_path)
        assert sorted(p.name for p in paths) == ["gpua001.log", "gpub001.log"]
        back = list(read_log_directory(tmp_path))
        assert sorted(back) == sorted(lines)

    def test_round_trip_gzip(self, tmp_path):
        lines = list(render_trace(_events(), seed=1))
        paths = write_node_logs(lines, tmp_path, compress=True)
        assert all(p.suffix == ".gz" for p in paths)
        back = list(read_log_directory(tmp_path))
        assert sorted(back) == sorted(lines)

    def test_lines_sorted_within_node(self, tmp_path):
        lines = list(render_trace(_events(), seed=1))
        write_node_logs(reversed(lines), tmp_path)
        node_lines = list(iter_log_lines(tmp_path / "gpub001.log"))
        assert node_lines == sorted(node_lines)

    def test_iter_single_file(self, tmp_path):
        (tmp_path / "x.log").write_text("a\nb\n")
        assert list(iter_log_lines(tmp_path / "x.log")) == ["a", "b"]

    def test_reader_ignores_other_files(self, tmp_path):
        (tmp_path / "a.log").write_text("line\n")
        (tmp_path / "notes.txt").write_text("ignored\n")
        assert list(read_log_directory(tmp_path)) == ["line"]
