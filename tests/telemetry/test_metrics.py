"""DCGM-style telemetry: sampling and Section-2.4 utilization recovery."""

import pytest

from repro.cluster.gpu import GpuModel
from repro.telemetry import (
    MetricsEmitter,
    UtilizationAnalyzer,
    load_samples_csv,
)


@pytest.fixture(scope="module")
def emitter(dataset):
    return MetricsEmitter(
        dataset.cluster, dataset.schedule, dataset.trace, interval_hours=48.0
    )


@pytest.fixture(scope="module")
def samples(emitter):
    return list(emitter.samples(models=(GpuModel.A40, GpuModel.A100)))


class TestSampling:
    def test_samples_cover_population_and_window(self, samples, dataset):
        gpus = {s.gpu_key for s in samples}
        assert len(gpus) == 848  # every Ampere GPU reports
        assert max(s.time for s in samples) <= dataset.window_seconds + 1.0

    def test_utilization_bounded(self, samples):
        assert all(0.0 <= s.utilization <= 1.0 for s in samples)

    def test_ecc_counters_monotone_per_gpu(self, samples):
        per_gpu = {}
        for sample in sorted(samples, key=lambda s: s.time):
            previous = per_gpu.get(sample.gpu_key, (0, 0))
            current = (sample.ecc_dbe_total, sample.retired_pages)
            assert current[0] >= previous[0]
            assert current[1] >= previous[1]
            per_gpu[sample.gpu_key] = current

    def test_some_gpu_accumulates_dbes(self, samples, dataset):
        if not any(int(e.xid) == 48 for e in dataset.trace):
            pytest.skip("no DBE at this scale/seed")
        assert max(s.ecc_dbe_total for s in samples) >= 1

    def test_interval_validation(self, dataset):
        with pytest.raises(ValueError):
            MetricsEmitter(dataset.cluster, dataset.schedule, dataset.trace,
                           interval_hours=0.0)


class TestUtilizationAnalysis:
    def test_section_2_4_shape(self, samples):
        analyzer = UtilizationAnalyzer(samples)
        a40 = analyzer.summary("A40")
        a100 = analyzer.summary("A100")
        # Both Ampere pools busy in the Delta regime; the A40/A100 ordering
        # and magnitudes track Section 2.4 loosely (40% vs 51% in the paper).
        assert 0.15 < a40.mean < 0.65
        assert 0.15 < a100.mean < 0.70
        assert a40.n_gpus == 400 and a100.n_gpus == 448

    def test_h100_underutilized_with_idle_gpus(self, h100_dataset):
        emitter = MetricsEmitter(
            h100_dataset.cluster, h100_dataset.schedule, h100_dataset.trace,
            interval_hours=48.0,
        )
        analyzer = UtilizationAnalyzer(emitter.samples(models=(GpuModel.H100,)))
        h100 = analyzer.summary("H100")
        # Section 2.4: ~20% mean utilization; "some of them are not being
        # scheduled at all".
        assert h100.mean < 0.35
        assert h100.n_gpus == 320

    def test_unknown_model_empty(self, samples):
        summary = UtilizationAnalyzer(samples).summary("B200")
        assert summary.n_gpus == 0 and summary.mean == 0.0


class TestCsvRoundTrip:
    def test_write_and_load(self, emitter, tmp_path):
        path = emitter.write_csv(tmp_path / "metrics.csv", models=(GpuModel.A40,))
        loaded = load_samples_csv(path)
        assert loaded
        assert all(s.model == "A40" for s in loaded)
        direct = list(emitter.samples(models=(GpuModel.A40,)))
        assert len(loaded) == len(direct)
        assert loaded[0].utilization == pytest.approx(direct[0].utilization, abs=1e-4)
