"""End-to-end pipeline orchestration."""

import pytest

from repro.core import DeltaStudy
from repro.core.coalesce import CoalesceConfig


class TestDeltaStudy:
    def test_errors_cached(self, study):
        first = study.errors
        assert first is study.errors

    def test_run_bundles_everything(self, study):
        report = study.run()
        assert report.statistics.total_count > 0
        assert report.job_impact is not None
        assert report.availability is not None
        assert report.counterfactual is not None
        assert report.propagation_graph.source_counts

    def test_job_impact_requires_database(self):
        study = DeltaStudy([], window_hours=10.0, n_nodes=1)
        with pytest.raises(ValueError):
            study.job_impact()
        with pytest.raises(ValueError):
            study.availability()

    def test_counterfactual_without_db_uses_default_mttr(self):
        study = DeltaStudy([], window_hours=10.0, n_nodes=1)
        analyzer = study.counterfactual()
        assert analyzer.mttr_hours == pytest.approx(0.3)

    def test_from_dataset_wires_window_and_nodes(self, dataset, study):
        assert study.window_hours == pytest.approx(dataset.window_seconds / 3600.0)
        assert study.n_nodes == dataset.reference_node_count

    def test_custom_coalesce_config_respected(self, dataset):
        wide = DeltaStudy.from_dataset(
            dataset, coalesce_config=CoalesceConfig(window_seconds=600.0)
        )
        narrow_count = len(DeltaStudy.from_dataset(dataset).errors)
        assert len(wide.errors) < narrow_count

    def test_delta_t_insensitivity_5_to_20_seconds(self, dataset):
        # Paper Section 3.2: results stable for dt in [5s, 20s].
        count_5 = len(DeltaStudy.from_dataset(dataset).errors)
        count_20 = len(
            DeltaStudy.from_dataset(
                dataset, coalesce_config=CoalesceConfig(window_seconds=20.0)
            ).errors
        )
        assert abs(count_5 - count_20) / count_5 < 0.05
