"""Propagation estimation: edges, terminals, isolation, NVLink involvement."""

import pytest

from repro.core.coalesce import CoalescedError
from repro.core.propagation import PropagationAnalyzer
from repro.faults.xid import Xid


def _error(t, xid, node="n1", pci="0000:07:00", persistence=0.0):
    return CoalescedError(
        time=t, node_id=node, pci_bus=pci, xid=int(xid), persistence=persistence,
        n_raw=1,
    )


class TestIntraGpuEdges:
    def test_simple_chain_measured(self):
        errors = [
            _error(0.0, Xid.PMU_SPI),
            _error(2.0, Xid.MMU),
        ]
        graph = PropagationAnalyzer(errors, window=60.0).analyze()
        assert graph.probability(Xid.PMU_SPI, Xid.MMU) == 1.0
        assert graph.mean_delay(Xid.PMU_SPI, Xid.MMU) == pytest.approx(2.0)
        assert graph.terminal_probability(Xid.MMU) == 1.0

    def test_successor_beyond_window_is_terminal(self):
        errors = [_error(0.0, Xid.PMU_SPI), _error(120.0, Xid.MMU)]
        graph = PropagationAnalyzer(errors, window=60.0).analyze()
        assert graph.probability(Xid.PMU_SPI, Xid.MMU) == 0.0
        assert graph.terminal_probability(Xid.PMU_SPI) == 1.0

    def test_persistence_extends_reach(self):
        # Successor measured from the end of the burst: a 100s burst plus a
        # 10s gap is still propagation even with a 60s window.
        errors = [
            _error(0.0, Xid.GSP, persistence=100.0),
            _error(110.0, Xid.PMU_SPI),
        ]
        graph = PropagationAnalyzer(errors, window=60.0).analyze()
        assert graph.probability(Xid.GSP, Xid.PMU_SPI) == 1.0

    def test_probability_normalized_by_source_count(self):
        errors = [
            _error(0.0, Xid.PMU_SPI),
            _error(2.0, Xid.MMU),
            _error(1_000.0, Xid.PMU_SPI),  # terminal instance
        ]
        graph = PropagationAnalyzer(errors, window=60.0).analyze()
        assert graph.probability(Xid.PMU_SPI, Xid.MMU) == pytest.approx(0.5)
        assert graph.terminal_probability(Xid.PMU_SPI) == pytest.approx(0.5)

    def test_different_gpus_not_intra(self):
        errors = [
            _error(0.0, Xid.PMU_SPI),
            _error(2.0, Xid.MMU, pci="0000:46:00"),
        ]
        graph = PropagationAnalyzer(errors, window=60.0).analyze()
        assert graph.probability(Xid.PMU_SPI, Xid.MMU) == 0.0


class TestIsolation:
    def test_first_error_is_isolated(self):
        errors = [_error(0.0, Xid.GSP), _error(10.0, Xid.GSP)]
        graph = PropagationAnalyzer(errors, window=60.0).analyze()
        # First GSP has no predecessor; the second follows within the window.
        assert graph.isolation_probability(Xid.GSP) == pytest.approx(0.5)


class TestInterGpuEdges:
    def test_cross_gpu_same_node(self):
        errors = [
            _error(0.0, Xid.NVLINK),
            _error(3.0, Xid.NVLINK, pci="0000:46:00"),
        ]
        graph = PropagationAnalyzer(errors, window=60.0).analyze()
        assert graph.probability(Xid.NVLINK, Xid.NVLINK, inter=True) == pytest.approx(0.5)

    def test_cross_node_never_inter(self):
        errors = [
            _error(0.0, Xid.NVLINK),
            _error(3.0, Xid.NVLINK, node="n2"),
        ]
        graph = PropagationAnalyzer(errors, window=60.0).analyze()
        assert graph.probability(Xid.NVLINK, Xid.NVLINK, inter=True) == 0.0


class TestNVLinkInvolvement:
    def test_single_gpu_incident(self):
        errors = [_error(0.0, Xid.NVLINK), _error(10.0, Xid.NVLINK)]
        involvement = PropagationAnalyzer(errors, window=60.0).nvlink_involvement()
        assert involvement.total_errors == 2
        assert involvement.multi_gpu_fraction == 0.0

    def test_multi_gpu_incident(self):
        errors = [
            _error(0.0, Xid.NVLINK),
            _error(3.0, Xid.NVLINK, pci="0000:46:00"),
            _error(8.0, Xid.NVLINK),
        ]
        involvement = PropagationAnalyzer(errors, window=60.0).nvlink_involvement()
        assert involvement.errors_in_multi_gpu_incidents == 3
        assert involvement.incident_gpu_counts == (2,)

    def test_all_eight(self):
        errors = [
            _error(float(i), Xid.NVLINK, pci=f"0000:{i:02d}:00") for i in range(8)
        ]
        involvement = PropagationAnalyzer(errors, window=60.0).nvlink_involvement()
        assert involvement.errors_in_all8_incidents == 8

    def test_separate_incidents_split_by_gap(self):
        errors = [
            _error(0.0, Xid.NVLINK),
            _error(1_000.0, Xid.NVLINK, pci="0000:46:00"),
        ]
        involvement = PropagationAnalyzer(errors, window=60.0).nvlink_involvement()
        assert involvement.multi_gpu_fraction == 0.0
        assert len(involvement.incident_gpu_counts) == 2


class TestPaperPaths:
    def test_memory_recovery_paths_from_dataset(self, study):
        paths = study.propagation().memory_recovery_paths()
        # Small-sample tolerances; the full-scale comparison lives in the
        # benchmarks/EXPERIMENTS.md.
        assert 0.0 <= paths["p_dbe_to_rre"] <= 1.0
        assert paths["p_dbe_to_rre"] + paths["p_dbe_to_rrf"] <= 1.0 + 1e-9

    def test_hardware_paths_from_dataset(self, study):
        paths = study.propagation().hardware_paths()
        assert paths["p_gsp_self_or_terminal"] > 0.9
        assert paths["p_gsp_isolated"] > 0.9
        assert paths["p_nvlink_self"] == pytest.approx(0.66, abs=0.12)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            PropagationAnalyzer([], window=0.0)


class TestNetworkxExport:
    def test_graph_structure(self):
        pytest.importorskip("networkx")
        errors = [_error(0.0, Xid.PMU_SPI), _error(2.0, Xid.MMU)]
        graph = PropagationAnalyzer(errors, window=60.0).analyze().to_networkx()
        assert graph.has_edge(int(Xid.PMU_SPI), int(Xid.MMU))
        assert graph[int(Xid.PMU_SPI)][int(Xid.MMU)]["probability"] == 1.0
