"""System-wide outage attribution."""

import pytest

from repro.core.coalesce import CoalescedError
from repro.core.swo import (
    SwoAnalyzer,
    SwoCause,
    SystemWideOutage,
    delta_swos,
)


def _error(t, node="n1"):
    return CoalescedError(t, node, "p", 119, 0.0, 1)


class TestDeltaSwos:
    def test_eight_outages_with_paper_mix(self):
        outages = delta_swos(1e6)
        assert len(outages) == 8
        causes = [o.cause for o in outages]
        assert causes.count(SwoCause.NETWORK) == 3
        assert causes.count(SwoCause.FILESYSTEM) == 2
        assert causes.count(SwoCause.MAINTENANCE) == 2
        assert causes.count(SwoCause.POWER) == 1

    def test_within_window(self):
        outages = delta_swos(1e6)
        assert all(0 <= o.start_time < 1e6 for o in outages)


class TestAttribution:
    def test_quiet_outage_not_gpu_attributable(self):
        errors = [_error(t) for t in (100.0, 200.0)]
        outage = SystemWideOutage(1e5, 6.0, SwoCause.NETWORK)
        analyzer = SwoAnalyzer(errors)
        (attribution,) = analyzer.attribute([outage])
        assert not attribution.gpu_attributable
        assert attribution.preceding_gpu_errors == 0

    def test_cluster_wide_storm_is_attributable(self):
        storm_start = 1e5 - 1_000.0
        errors = [
            _error(storm_start + i * 10.0, node=f"n{i % 20}") for i in range(100)
        ]
        outage = SystemWideOutage(1e5, 6.0, SwoCause.UNKNOWN)
        (attribution,) = SwoAnalyzer(errors).attribute([outage])
        assert attribution.gpu_attributable
        assert attribution.nodes_involved == 20

    def test_single_sick_gpu_storm_is_not_attributable(self):
        # The offender GPU pattern: huge volume, one node -> not an SWO cause.
        errors = [_error(1e5 - 1_000.0 + i * 10.0) for i in range(100)]
        outage = SystemWideOutage(1e5, 6.0, SwoCause.UNKNOWN)
        (attribution,) = SwoAnalyzer(errors).attribute([outage])
        assert attribution.preceding_gpu_errors == 100
        assert not attribution.gpu_attributable

    def test_paper_claim_on_dataset(self, study, dataset):
        """None of the eight Delta SWOs were caused by GPU errors."""
        errors = study.error_statistics().errors
        analyzer = SwoAnalyzer(errors)
        assert analyzer.none_gpu_caused(delta_swos(dataset.window_seconds))
