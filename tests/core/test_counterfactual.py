"""Section 5.5 counterfactual analysis."""

import pytest

from repro.core.coalesce import CoalescedError
from repro.core.counterfactual import CounterfactualAnalyzer
from repro.core.mtbe import ErrorStatistics


def _error(t, xid, pci="0000:07:00"):
    return CoalescedError(t, "n1", pci, int(xid), 0.0, 1)


class TestOffenderDetection:
    def test_concentrated_gpu_flagged(self):
        errors = [_error(float(i), 95) for i in range(98)] + [
            _error(1_000.0, 95, pci="0000:46:00"),
            _error(1_001.0, 95, pci="0000:85:00"),
        ]
        stats = ErrorStatistics(errors, 1_000.0, 10)
        analyzer = CounterfactualAnalyzer(stats, mttr_hours=0.3)
        assert ("n1", "0000:07:00") in analyzer.offender_gpus()

    def test_diffuse_code_has_no_offenders(self):
        errors = [_error(float(i), 31, pci=f"0000:{i:02x}:00") for i in range(100)]
        stats = ErrorStatistics(errors, 1_000.0, 10)
        analyzer = CounterfactualAnalyzer(stats, mttr_hours=0.3)
        assert analyzer.offender_gpus() == []

    def test_single_event_gpus_never_offenders(self):
        # A GPU with one error of a rare code can hold 100% share; the
        # count>1 guard must keep it out.
        errors = [_error(0.0, 48)]
        stats = ErrorStatistics(errors, 1_000.0, 10)
        analyzer = CounterfactualAnalyzer(stats, mttr_hours=0.3)
        assert analyzer.offender_gpus() == []


class TestScenarios:
    def test_report_improvements(self):
        offender = [_error(float(i), 95) for i in range(900)]
        background = [
            # Distinct PCI space so no background GPU collides with the
            # offender's bus address.
            _error(2_000.0 + i, 31, pci=f"0000:{(i % 60) + 64:02x}:00")
            for i in range(100)
        ]
        stats = ErrorStatistics(offender + background, 10_000.0, 10)
        report = CounterfactualAnalyzer(stats, mttr_hours=0.3).analyze()
        assert report.baseline_mtbe_node_hours == pytest.approx(100.0)
        assert report.without_offenders_mtbe_node_hours == pytest.approx(1_000.0)
        assert report.offender_improvement == pytest.approx(10.0)

    def test_hardware_exclusion_on_top(self):
        errors = [
            _error(float(i), 31, pci=f"0000:{(i % 60):02x}:00") for i in range(50)
        ] + [_error(5_000.0 + i, 119, pci=f"0000:{(i % 60):02x}:00") for i in range(50)]
        stats = ErrorStatistics(errors, 10_000.0, 10)
        report = CounterfactualAnalyzer(stats, mttr_hours=0.3).analyze()
        assert report.hardware_additional_improvement == pytest.approx(2.0)

    def test_availability_projection(self):
        errors = [_error(float(i), 31, pci=f"0000:{(i % 60):02x}:00") for i in range(100)]
        stats = ErrorStatistics(errors, 10_000.0, 10)
        report = CounterfactualAnalyzer(stats, mttr_hours=0.5).analyze()
        assert report.baseline_availability == pytest.approx(1_000.0 / 1_000.5)

    def test_dataset_counterfactual_matches_paper_shape(self, study):
        report = study.counterfactual().analyze()
        assert report.offender_improvement == pytest.approx(3.0, abs=1.0)
        assert 1.05 < report.hardware_additional_improvement < 1.45
        assert report.improved_availability > report.baseline_availability
        assert report.improved_availability == pytest.approx(0.9987, abs=0.0012)
