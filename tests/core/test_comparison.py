"""Cross-generation comparison (Section 7's narrative as a table)."""

import pytest

from repro.core.comparison import PRIOR_GENERATIONS, GenerationComparison


@pytest.fixture(scope="module")
def comparison(study):
    return GenerationComparison(study.error_statistics(), study.propagation())


class TestPriorGenerations:
    def test_kepler_always_interrupts(self):
        kepler = PRIOR_GENERATIONS["kepler"]
        assert kepler.dbe_job_interruption_prob == 1.0
        assert not kepler.has_error_containment
        assert kepler.retirement_budget == 64

    def test_no_prior_generation_has_gsp(self):
        assert not any(p.has_gsp for p in PRIOR_GENERATIONS.values())


class TestComparison:
    def test_ampere_row_appended_and_measured(self, comparison):
        rows = comparison.rows()
        assert len(rows) == len(PRIOR_GENERATIONS) + 1
        ampere = rows[-1]
        assert ampere.measured
        assert ampere.has_error_containment
        assert ampere.retirement_budget == 512

    def test_measured_interruption_far_below_certainty(self, comparison):
        measured = comparison.measured_dbe_interruption_prob()
        # Paper: ~29.4% of DBEs still interrupt (100% pre-Ampere).
        assert 0.0 <= measured < 0.7

    def test_generational_improvement_factor(self, comparison):
        assert comparison.generational_improvement() > 1.5

    def test_new_failure_modes_include_gsp(self, comparison):
        modes = comparison.new_failure_modes()
        assert any("GSP" in mode for mode in modes)
        assert any("uncontained" in mode for mode in modes)
