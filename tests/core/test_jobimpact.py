"""Job-impact analysis: classification, Table 2, Table 3, Figure 9a/9b."""

import pytest

from repro.core.coalesce import CoalescedError
from repro.core.jobimpact import ATTRIBUTION_WINDOW, JobImpactAnalyzer
from repro.faults.xid import Xid
from repro.slurm.accounting import SlurmDatabase
from repro.slurm.job import JobRecord, JobState


def _job(job_id, start, end, state=JobState.COMPLETED, exit_code=0, gpus=None,
         name="namd_run"):
    return JobRecord(
        job_id=job_id,
        name=name,
        user="u001",
        submit_time=start,
        start_time=start,
        end_time=end,
        n_gpus=len(gpus) if gpus else 1,
        gpus=tuple(gpus) if gpus else (("n1", "0000:07:00"),),
        partition="a100",
        is_ml=False,
        state=state,
        exit_code=exit_code,
    )


def _error(t, xid=Xid.GSP, node="n1", pci="0000:07:00"):
    return CoalescedError(
        time=t, node_id=node, pci_bus=pci, xid=int(xid), persistence=0.0, n_raw=1
    )


class TestClassification:
    def test_failure_right_after_error_is_gpu_failed(self):
        jobs = [_job(1, 0.0, 1_000.0, state=JobState.NODE_FAIL, exit_code=1)]
        errors = [_error(990.0)]
        analyzer = JobImpactAnalyzer(SlurmDatabase(jobs), errors)
        classified = analyzer.classify_jobs()
        assert classified[1] == (True, (int(Xid.GSP),))

    def test_error_outside_attribution_window_not_blamed(self):
        jobs = [_job(1, 0.0, 1_000.0, state=JobState.FAILED, exit_code=1)]
        errors = [_error(1_000.0 - ATTRIBUTION_WINDOW - 5.0)]
        analyzer = JobImpactAnalyzer(SlurmDatabase(jobs), errors)
        assert analyzer.classify_jobs()[1][0] is False

    def test_successful_job_never_gpu_failed(self):
        jobs = [_job(1, 0.0, 1_000.0)]
        errors = [_error(995.0)]
        analyzer = JobImpactAnalyzer(SlurmDatabase(jobs), errors)
        assert analyzer.classify_jobs()[1][0] is False

    def test_error_on_foreign_gpu_not_blamed(self):
        jobs = [_job(1, 0.0, 1_000.0, state=JobState.FAILED, exit_code=1)]
        errors = [_error(995.0, pci="0000:46:00")]
        analyzer = JobImpactAnalyzer(SlurmDatabase(jobs), errors)
        assert analyzer.classify_jobs()[1][0] is False

    def test_all_window_codes_held_responsible(self):
        # PMU -> MMU chain: both codes within the window share the blame.
        jobs = [_job(1, 0.0, 1_000.0, state=JobState.FAILED, exit_code=139)]
        errors = [_error(985.0, Xid.PMU_SPI), _error(988.0, Xid.MMU)]
        analyzer = JobImpactAnalyzer(SlurmDatabase(jobs), errors)
        assert analyzer.classify_jobs()[1][1] == (int(Xid.MMU), int(Xid.PMU_SPI))

    def test_user_codes_ignored(self):
        jobs = [_job(1, 0.0, 1_000.0, state=JobState.FAILED, exit_code=1)]
        errors = [_error(995.0, Xid.GENERAL_SW)]
        analyzer = JobImpactAnalyzer(SlurmDatabase(jobs), errors)
        assert analyzer.classify_jobs()[1][0] is False


class TestTable2:
    def test_rows_built_from_encounters_and_failures(self):
        jobs = [
            _job(1, 0.0, 1_000.0, state=JobState.NODE_FAIL, exit_code=1),
            _job(2, 2_000.0, 3_000.0),  # encounters but survives
        ]
        errors = [_error(990.0), _error(2_500.0)]
        analyzer = JobImpactAnalyzer(SlurmDatabase(jobs), errors)
        (row,) = analyzer.table2()
        assert row.xid == int(Xid.GSP)
        assert row.jobs_encountering == 2
        assert row.gpu_failed_jobs == 1
        assert row.failure_probability == pytest.approx(0.5)

    def test_total_gpu_failed(self):
        jobs = [_job(1, 0.0, 1_000.0, state=JobState.NODE_FAIL, exit_code=1)]
        analyzer = JobImpactAnalyzer(SlurmDatabase(jobs), [_error(990.0)])
        assert analyzer.total_gpu_failed() == 1

    def test_dataset_table2_probabilities(self, study):
        rows = {r.xid: r for r in study.job_impact().table2()}
        mmu = rows.get(int(Xid.MMU))
        assert mmu is not None
        assert mmu.failure_probability == pytest.approx(0.5867, abs=0.12)


class TestTable3:
    def test_bucket_assignment_and_stats(self):
        jobs = [
            _job(1, 0.0, 600.0),
            _job(2, 0.0, 1_200.0),
            _job(3, 0.0, 600.0, gpus=[("n1", "0000:07:00"), ("n1", "0000:46:00")]),
        ]
        analyzer = JobImpactAnalyzer(SlurmDatabase(jobs), [])
        rows = {r.label: r for r in analyzer.table3()}
        assert rows["1"].count == 2
        assert rows["2-4"].count == 1
        assert rows["1"].mean_minutes == pytest.approx(15.0)
        assert rows["1"].share == pytest.approx(2 / 3)

    def test_ml_hours_classified_by_name(self):
        jobs = [
            _job(1, 0.0, 3_600.0, name="train_resnet50"),
            _job(2, 0.0, 3_600.0, name="namd_run"),
        ]
        analyzer = JobImpactAnalyzer(SlurmDatabase(jobs), [])
        row = analyzer.table3()[0]
        assert row.ml_gpu_hours == pytest.approx(1.0)
        assert row.non_ml_gpu_hours == pytest.approx(1.0)

    def test_empty_bucket_rendered_as_zero(self):
        analyzer = JobImpactAnalyzer(SlurmDatabase([_job(1, 0.0, 10.0)]), [])
        rows = {r.label: r for r in analyzer.table3()}
        assert rows["256+"].count == 0


class TestFigure9:
    def test_elapsed_histogram_partitions_jobs(self):
        jobs = [
            _job(1, 0.0, 300.0),  # 5 min, completed
            _job(2, 0.0, 7_200.0, state=JobState.FAILED, exit_code=1),  # gpu-failed
        ]
        errors = [_error(7_190.0)]
        analyzer = JobImpactAnalyzer(SlurmDatabase(jobs), errors)
        histogram = analyzer.elapsed_histogram(edges_minutes=(0, 60, 240))
        assert histogram.completed == (1, 0)
        assert histogram.gpu_failed == (0, 1)

    def test_lost_node_hours(self):
        jobs = [_job(1, 0.0, 7_200.0, state=JobState.FAILED, exit_code=1,
                     gpus=[("n1", "0000:07:00"), ("n2", "0000:07:00")])]
        errors = [_error(7_190.0)]
        analyzer = JobImpactAnalyzer(SlurmDatabase(jobs), errors)
        assert analyzer.lost_node_hours() == pytest.approx(4.0)

    def test_errors_vs_duration_series(self):
        jobs = [_job(1, 0.0, 120_000.0)]  # 2,000 min, completed
        errors = [_error(t) for t in (1_000.0, 2_000.0, 3_000.0)]
        analyzer = JobImpactAnalyzer(SlurmDatabase(jobs), errors)
        series = analyzer.errors_vs_duration(edges_minutes=(0, 1_000, 4_000))
        assert series["completed"][1][1] == pytest.approx(3.0)

    def test_non_gpu_failures_excluded_from_figure9b(self):
        jobs = [_job(1, 0.0, 60_000.0, state=JobState.FAILED, exit_code=1)]
        analyzer = JobImpactAnalyzer(SlurmDatabase(jobs), [])
        series = analyzer.errors_vs_duration(edges_minutes=(0, 4_000))
        assert series["completed"][0][1] == 0.0
        assert series["gpu_failed"][0][1] == 0.0
