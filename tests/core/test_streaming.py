"""Streaming coalescer and persistence alarms."""

import pytest

from repro.core.coalesce import coalesce_errors
from repro.core.parsing import RawXidRecord
from repro.core.streaming import StreamingCoalescer


def _record(t, msg="m", node="n1", pci="p", xid=95):
    return RawXidRecord(time=float(t), node_id=node, pci_bus=pci, xid=xid, message=msg)


class TestStreamingMatchesBatch:
    def test_same_output_as_batch_algorithm(self):
        times = [0.0, 3.0, 6.0, 30.0, 33.0, 100.0]
        records = [_record(t) for t in times]
        batch = coalesce_errors(records)
        streaming = StreamingCoalescer()
        for record in records:
            streaming.feed(record)
        online = streaming.flush()
        assert [(e.time, e.persistence, e.n_raw) for e in online] == [
            (e.time, e.persistence, e.n_raw) for e in batch
        ]

    def test_matches_batch_on_dataset_sample(self, dataset):
        from repro.core.parsing import iter_parse_syslog

        records = sorted(
            iter_parse_syslog(dataset.log_lines(include_noise=False)),
            key=lambda r: r.time,
        )[:5_000]
        batch = coalesce_errors(records)
        streaming = StreamingCoalescer()
        for record in records:
            streaming.feed(record)
        online = streaming.flush()
        assert len(online) == len(batch)

    def test_cutoff_splits_runs(self):
        streaming = StreamingCoalescer(max_persistence=10.0)
        for t in (0.0, 4.0, 8.0, 12.0, 16.0):
            streaming.feed(_record(t))
        errors = streaming.flush()
        assert len(errors) == 2
        assert all(e.persistence <= 10.0 for e in errors)


class TestAlarms:
    def test_alarm_fires_while_run_still_open(self):
        streaming = StreamingCoalescer(alarm_after_seconds=9.0)
        alarms = []
        for t in (0.0, 4.0, 8.0, 12.0):
            alarm = streaming.feed(_record(t))
            if alarm:
                alarms.append((t, alarm))
        assert len(alarms) == 1
        fired_at, alarm = alarms[0]
        assert fired_at == 12.0  # the moment the open span crossed 9s
        assert alarm.open_persistence == pytest.approx(12.0)
        assert streaming.open_runs() == 1  # run still open when alarmed

    def test_alarm_fires_once_per_run(self):
        streaming = StreamingCoalescer(alarm_after_seconds=5.0)
        fired = sum(
            1 for t in (0.0, 4.0, 8.0, 12.0, 16.0) if streaming.feed(_record(t))
        )
        assert fired == 1

    def test_new_run_can_alarm_again(self):
        streaming = StreamingCoalescer(alarm_after_seconds=5.0)
        total = 0
        for t in (0.0, 4.0, 8.0):
            total += bool(streaming.feed(_record(t)))
        for t in (100.0, 104.0, 108.0):
            total += bool(streaming.feed(_record(t)))
        assert total == 2

    def test_short_bursts_never_alarm(self):
        streaming = StreamingCoalescer(alarm_after_seconds=60.0)
        for t in (0.0, 2.0, 4.0):
            assert streaming.feed(_record(t)) is None
        assert streaming.alarms == []

    def test_out_of_order_input_rejected(self):
        streaming = StreamingCoalescer()
        streaming.feed(_record(10.0))
        streaming.feed(_record(12.0))
        with pytest.raises(ValueError):
            streaming.feed(_record(5.0))

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            StreamingCoalescer(alarm_after_seconds=0.0)

    def test_late_record_within_window_is_folded_into_the_run(self):
        """A slightly-late line (flushed buffer, slow forwarder) must merge
        into the open run it would have coalesced with anyway."""
        streaming = StreamingCoalescer(window_seconds=5.0)
        streaming.feed(_record(10.0))
        streaming.feed(_record(12.0))
        streaming.feed(_record(9.0))  # 3s late: within the window
        errors = streaming.flush()
        assert len(errors) == 1
        assert errors[0].n_raw == 3
        # The late line extended the run's start backward.
        assert errors[0].time == 9.0
        assert errors[0].persistence == pytest.approx(3.0)

    def test_late_record_beyond_window_still_rejected(self):
        streaming = StreamingCoalescer(window_seconds=5.0)
        streaming.feed(_record(10.0))
        streaming.feed(_record(20.0))
        with pytest.raises(ValueError):
            streaming.feed(_record(14.0))  # 6s late: past the window

    def test_restart_mode_survives_a_time_regression(self):
        """A live feed that jumps backward (clock reset, replay restarting
        behind warm-started history) closes the stale run and starts a new
        one instead of raising."""
        closed = []
        streaming = StreamingCoalescer(
            window_seconds=5.0, time_regression="restart", on_close=closed.append
        )
        streaming.feed(_record(1000.0))
        streaming.feed(_record(1002.0))
        streaming.feed(_record(3.0))  # new timeline, far in the "past"
        streaming.feed(_record(5.0))
        assert len(closed) == 1  # the stale run closed at the jump
        assert closed[0].time == 1000.0
        errors = streaming.flush()
        assert len(errors) == 1 + 1
        assert {(e.time, e.n_raw) for e in errors} == {(1000.0, 2), (3.0, 2)}

    def test_restart_mode_still_folds_in_window_late_records(self):
        streaming = StreamingCoalescer(window_seconds=5.0, time_regression="restart")
        streaming.feed(_record(10.0))
        streaming.feed(_record(12.0))
        streaming.feed(_record(9.0))  # 3s late: folded, not a restart
        errors = streaming.flush()
        assert len(errors) == 1
        assert errors[0].n_raw == 3

    def test_unknown_time_regression_policy_rejected(self):
        with pytest.raises(ValueError):
            StreamingCoalescer(time_regression="ignore")

    def test_late_record_can_complete_an_alarm(self):
        streaming = StreamingCoalescer(window_seconds=5.0, alarm_after_seconds=6.0)
        streaming.feed(_record(10.0))
        streaming.feed(_record(14.0))
        alarm = streaming.feed(_record(9.0))  # stretches the span to 5s... no
        assert alarm is None
        alarm = streaming.feed(_record(16.0))  # span 9.0 -> 16.0 crosses 6s
        assert alarm is not None
        assert alarm.start_time == 9.0


class TestCallbacksAndMemory:
    def test_on_open_fires_once_per_run(self):
        opened = []
        streaming = StreamingCoalescer(
            window_seconds=5.0, on_open=lambda r: opened.append(r.time)
        )
        for t in (0.0, 3.0, 100.0, 102.0):
            streaming.feed(_record(t))
        assert opened == [0.0, 100.0]  # dup lines never re-open

    def test_on_close_receives_every_error_even_without_keep_closed(self):
        closed = []
        streaming = StreamingCoalescer(
            window_seconds=5.0, keep_closed=False,
            on_close=lambda e: closed.append(e),
        )
        streaming.feed(_record(0.0))
        streaming.feed(_record(100.0))  # closes the first run
        assert [e.time for e in closed] == [0.0]
        assert streaming.flush() == []  # nothing retained on the live path
        assert [e.time for e in closed] == [0.0, 100.0]

    def test_keep_closed_default_retains_history(self):
        streaming = StreamingCoalescer(window_seconds=5.0)
        streaming.feed(_record(0.0))
        streaming.feed(_record(100.0))
        assert len(streaming.flush()) == 2

    def test_open_persistence_query(self):
        streaming = StreamingCoalescer(window_seconds=5.0)
        streaming.feed(_record(0.0))
        streaming.feed(_record(4.0))
        assert streaming.open_persistence("n1", "p", 95, "m") == pytest.approx(4.0)
        assert streaming.open_persistence("n1", "p", 31, "m") is None

    def test_catches_the_uncontained_saga_early(self, dataset):
        """The 17-day-class burst should alarm within minutes of starting,
        not 17 days later — the monitoring gap the paper calls out."""
        from repro.core.parsing import iter_parse_syslog

        records = sorted(
            iter_parse_syslog(dataset.log_lines(include_noise=False)),
            key=lambda r: r.time,
        )
        streaming = StreamingCoalescer(alarm_after_seconds=1_800.0)
        first_alarm = None
        for record in records:
            alarm = streaming.feed(record)
            if alarm is not None:
                first_alarm = alarm
                break
        assert first_alarm is not None
        assert first_alarm.xid == 95
        # Fired while the burst was ~30 minutes old, i.e. "live".
        assert first_alarm.open_persistence < 2_000.0
