"""Stage I: XID extraction from raw syslog."""

import pytest

from repro.core.parsing import parse_line, parse_syslog

GOOD = (
    "2022-03-14T02:11:09.113 gpub042 kernel: "
    "NVRM: Xid (PCI:0000:C7:00): 119, pid=8821, Timeout after 6s of waiting "
    "for RPC response from GSP! Expected function 76 (GSP_RM_CONTROL)"
)


class TestParseLine:
    def test_extracts_all_fields(self):
        record = parse_line(GOOD)
        assert record is not None
        assert record.node_id == "gpub042"
        assert record.pci_bus == "0000:C7:00"
        assert record.xid == 119
        assert record.pid == 8821
        assert record.message.startswith("Timeout after 6s")
        assert record.time > 0

    def test_unknown_pid_parses_as_none(self):
        line = GOOD.replace("pid=8821", "pid='<unknown>'")
        record = parse_line(line)
        assert record is not None and record.pid is None

    def test_gpu_key(self):
        assert parse_line(GOOD).gpu_key == ("gpub042", "0000:C7:00")

    @pytest.mark.parametrize(
        "line",
        [
            "2022-01-01T00:00:01.000 gpua001 systemd[1]: Started Session 4",
            "2022-01-01T00:00:01.000 gpua001 gpumond[12]: GPU 3 utilization ok",
            "random text with no structure",
            "",
            # Near-miss: right marker, wrong structure.
            "2022-01-01T00:00:01.000 gpua001 kernel: NVRM: Xid malformed",
        ],
    )
    def test_non_xid_lines_rejected(self, line):
        assert parse_line(line) is None

    def test_whole_second_timestamps_accepted(self):
        line = GOOD.replace("02:11:09.113", "02:11:09")
        record = parse_line(line)
        assert record is not None

    def test_case_sensitive_marker(self):
        assert parse_line(GOOD.replace("NVRM: Xid", "nvrm: xid")) is None


class TestParseSyslog:
    def test_filters_and_orders_preserved(self):
        lines = ["noise", GOOD, "more noise", GOOD.replace("119", "31")]
        records = parse_syslog(lines)
        assert [r.xid for r in records] == [119, 31]

    def test_empty_input(self):
        assert parse_syslog([]) == []

    def test_round_trip_with_renderer(self, dataset):
        # Every rendered XID line in the shared dataset must parse; noise
        # must not.
        from repro.core.parsing import iter_parse_syslog

        n_records = sum(1 for _ in iter_parse_syslog(dataset.log_lines()))
        n_xid_lines = sum(
            1 for line in dataset.log_lines(include_noise=False)
        )
        assert n_records == n_xid_lines
