"""Report rendering: every table/figure renderer produces sane text."""

import pytest

from repro.core.report import (
    render_counterfactual,
    render_figure5,
    render_figure6,
    render_figure7,
    render_figure9,
    render_overprovision,
    render_table1,
    render_table2,
    render_table3,
)
from repro.faults.calibration import AMPERE_CALIBRATION


@pytest.fixture(scope="module")
def pieces(study):
    return {
        "stats": study.error_statistics(),
        "impact": study.job_impact(),
        "availability": study.availability(),
        "propagation": study.propagation(),
        "counterfactual": study.counterfactual().analyze(),
    }


class TestTableRenders:
    def test_table1_contains_paper_columns(self, pieces):
        text = render_table1(pieces["stats"], AMPERE_CALIBRATION, scale=0.02)
        assert "MTBE/node paper" in text
        assert "Uncontained ECC" in text
        assert "Memory vs hardware MTBE ratio" in text

    def test_table1_without_profile(self, pieces):
        text = render_table1(pieces["stats"])
        assert "Table 1" in text

    def test_table2_mentions_total_failed(self, pieces):
        text = render_table2(pieces["impact"])
        assert "Total GPU-failed jobs" in text
        assert "MMU Err." in text

    def test_table3_has_all_buckets(self, pieces):
        text = render_table3(pieces["impact"])
        for label in ("1", "2-4", "8-32", "256+"):
            assert f"| {label} " in text


class TestFigureRenders:
    def test_figure5(self, pieces):
        text = render_figure5(pieces["propagation"])
        assert "GSP -> PMU SPI" in text and "paper 0.82" in text

    def test_figure6(self, pieces):
        text = render_figure6(pieces["propagation"])
        assert "NVLink -> peer GPU" in text

    def test_figure7(self, pieces):
        text = render_figure7(pieces["propagation"])
        assert "DBE impact alleviated" in text

    def test_figure9(self, pieces):
        text = render_figure9(pieces["impact"], pieces["availability"])
        assert "node-hours lost" in text
        assert "availability" in text

    def test_counterfactual(self, pieces):
        text = render_counterfactual(pieces["counterfactual"])
        assert "without top offenders" in text

    def test_overprovision_marks_paper_anchors(self):
        text = render_overprovision({(40.0, 0.995): 0.2, (5.0, 0.995): 0.05})
        assert "20%" in text and "5%" in text

    def test_generations(self, study):
        from repro.core.comparison import GenerationComparison
        from repro.core.report import render_generations

        text = render_generations(
            GenerationComparison(study.error_statistics(), study.propagation())
        )
        assert "Kepler" in text
        assert "New Ampere-era failure modes" in text

    def test_spatial(self, study):
        from repro.core.report import render_spatial
        from repro.core.spatial import SpatialAnalyzer

        text = render_spatial(
            SpatialAnalyzer(study.error_statistics().errors, n_gpus=848)
        )
        assert "Gini" in text and "| 95 " in text
