"""Long-persistence prediction (the paper's Section-4.3 future-work model)."""

import numpy as np
import pytest

from repro.core.parsing import RawXidRecord
from repro.core.prediction import PersistencePredictor, RunExample, extract_runs


def _record(t, msg="m", node="n1", pci="p", xid=95):
    return RawXidRecord(time=float(t), node_id=node, pci_bus=pci, xid=xid, message=msg)


class TestExtractRuns:
    def test_features_from_first_window_only(self):
        times = list(np.arange(0.0, 300.0, 4.0))  # one 296s run
        runs = extract_runs([_record(t) for t in times], observe_seconds=60.0)
        (run,) = runs
        assert run.final_persistence == pytest.approx(296.0)
        assert run.early_lines == 16  # lines at 0,4,...,60
        assert 3.0 < run.early_mean_gap < 5.0
        assert run.early_span == pytest.approx(60.0)

    def test_gap_splits_runs(self):
        records = [_record(0.0), _record(3.0), _record(100.0)]
        runs = extract_runs(records)
        assert len(runs) == 2

    def test_gpu_prior_counts_previous_runs(self):
        records = [_record(0.0), _record(500.0), _record(1_000.0)]
        runs = extract_runs(records)
        assert [r.gpu_prior_runs for r in runs] == [0, 1, 2]

    def test_single_line_run_defaults(self):
        (run,) = extract_runs([_record(5.0)], observe_seconds=60.0)
        assert run.early_lines == 1
        assert run.early_mean_gap == 60.0
        assert run.early_span == 0.0
        assert run.final_persistence == 0.0


def _synthetic_examples(n=400, seed=0):
    """Short runs (xid 31) vs long offender runs (xid 95) with noise."""
    rng = np.random.default_rng(seed)
    examples = []
    for i in range(n):
        long = rng.random() < 0.3
        examples.append(
            RunExample(
                xid=95 if long or rng.random() < 0.1 else 31,
                gpu_key=("n1", "p1" if long else f"p{i%7}"),
                start_time=float(i),
                early_lines=int(rng.poisson(15 if long else 2)) + 1,
                early_mean_gap=float(rng.uniform(2, 5) if long else rng.uniform(20, 60)),
                early_span=float(rng.uniform(250, 300) if long else rng.uniform(0, 100)),
                gpu_prior_runs=int(rng.poisson(20 if long else 1)),
                final_persistence=float(
                    rng.uniform(700, 5_000) if long else rng.uniform(0, 120)
                ),
            )
        )
    return examples


class TestPredictor:
    def test_learns_separable_synthetic_data(self):
        examples = _synthetic_examples()
        train, test = examples[:300], examples[300:]
        predictor = PersistencePredictor().fit(train)
        metrics = predictor.evaluate(test)
        assert metrics["precision"] > 0.85
        assert metrics["recall"] > 0.85

    def test_probabilities_bounded(self):
        examples = _synthetic_examples(100)
        predictor = PersistencePredictor().fit(examples)
        probabilities = predictor.predict_proba(examples)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_unfitted_rejects_predict(self):
        with pytest.raises(RuntimeError):
            PersistencePredictor().predict_proba(_synthetic_examples(5))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            PersistencePredictor().fit([])

    def test_on_dataset_beats_base_rate(self, dataset):
        """Trained on the first half of the window, the model must find
        long-persisting errors in the second half far better than chance."""
        from repro.core.parsing import iter_parse_syslog

        records = list(iter_parse_syslog(dataset.log_lines(include_noise=False)))
        runs = extract_runs(records)
        runs.sort(key=lambda r: r.start_time)
        half = len(runs) // 2
        train, test = runs[:half], runs[half:]
        predictor = PersistencePredictor(long_threshold_seconds=600.0).fit(train)
        metrics = predictor.evaluate(test)
        base_rate = metrics["positives"] / max(len(test), 1)
        assert metrics["positives"] > 5  # the offender supplies positives
        assert metrics["recall"] > 0.5
        assert metrics["precision"] > min(3 * base_rate, 0.5)
