"""Spatial concentration analysis."""

import pytest

from repro.core.coalesce import CoalescedError
from repro.core.spatial import (
    SpatialAnalyzer,
    gini_coefficient,
    lorenz_points,
)


def _errors(spec):
    """spec: list of (gpu_index, count) -> errors on synthetic GPUs."""
    out = []
    t = 0.0
    for gpu_index, count in spec:
        for _ in range(count):
            out.append(
                CoalescedError(t, f"n{gpu_index // 4}", f"p{gpu_index}", 95, 0.0, 1)
            )
            t += 10.0
    return out


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_single_holder_maximal(self):
        value = gini_coefficient([100, 0, 0, 0])
        assert value == pytest.approx(0.75)  # (n-1)/n for n=4

    def test_population_padding_raises_inequality(self):
        concentrated = gini_coefficient([10, 10], population=100)
        among_affected = gini_coefficient([10, 10])
        assert concentrated > 0.9
        assert among_affected == pytest.approx(0.0, abs=1e-9)

    def test_empty(self):
        assert gini_coefficient([]) == 0.0

    def test_population_validation(self):
        with pytest.raises(ValueError):
            gini_coefficient([1, 2, 3], population=2)


class TestLorenz:
    def test_top_k_shares(self):
        points = lorenz_points([70, 20, 5, 5], ks=(1, 2))
        assert points[1] == pytest.approx(0.70)
        assert points[2] == pytest.approx(0.90)

    def test_k_beyond_size(self):
        assert lorenz_points([10], ks=(4,))[4] == pytest.approx(1.0)

    def test_empty(self):
        assert lorenz_points([], ks=(1,))[1] == 0.0


class TestSpatialAnalyzer:
    def test_offender_detected_with_huge_surprise(self):
        analyzer = SpatialAnalyzer(_errors([(0, 500), (1, 1), (2, 1)]), n_gpus=800)
        offenders = analyzer.offenders(95)
        assert offenders
        top = offenders[0]
        assert top.count == 500
        assert top.share > 0.99
        assert top.surprise > 100

    def test_uniform_spread_no_offenders(self):
        spec = [(i, 2) for i in range(100)]
        analyzer = SpatialAnalyzer(_errors(spec), n_gpus=120)
        assert analyzer.offenders(95) == []

    def test_affected_fraction(self):
        analyzer = SpatialAnalyzer(_errors([(0, 3), (1, 2)]), n_gpus=100)
        assert analyzer.affected_gpu_fraction(95) == pytest.approx(0.02)

    def test_node_concentration(self):
        analyzer = SpatialAnalyzer(_errors([(0, 2), (1, 3), (8, 1)]), n_gpus=100)
        nodes = analyzer.node_concentration(95)
        assert nodes["n0"] == 5 and nodes["n2"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SpatialAnalyzer([], n_gpus=0)


class TestOnDataset:
    def test_uncontained_concentration_matches_paper(self, study, dataset):
        """Section 4.2 (iii): >90% of uncontained errors from a few GPUs;
        Section 4.4.3: only ~0.5% of GPUs ever saw one."""
        errors = study.error_statistics().errors
        n_gpus = len(dataset.cluster.gpus_of_model(
            *(type(dataset.cluster.gpus[0].model)(m) for m in ("A40", "A100"))
        ))
        analyzer = SpatialAnalyzer(errors, n_gpus=n_gpus)
        assert analyzer.top_share(95, k=4) > 0.9
        assert analyzer.affected_gpu_fraction(95) < 0.02
        assert analyzer.gini(95) > 0.99
        offenders = analyzer.offenders(95)
        assert offenders and offenders[0].surprise > 1_000

    def test_mmu_less_concentrated_than_uncontained(self, study, dataset):
        errors = study.error_statistics().errors
        analyzer = SpatialAnalyzer(errors, n_gpus=848)
        assert analyzer.top_share(31, k=1) < analyzer.top_share(95, k=1)
        assert analyzer.affected_gpu_fraction(31) > analyzer.affected_gpu_fraction(95)
