"""Section 5.4 overprovisioning emulation."""

import pytest

from repro.core.overprovision import (
    BASE_AVAILABILITY,
    OverprovisionConfig,
    OverprovisionSimulator,
    required_overprovision_analytic,
)


class TestConfig:
    def test_effective_rate_at_base_availability(self):
        config = OverprovisionConfig()
        # 800 nodes x 1%/h = 8 failures/hour.
        assert config.effective_failure_rate_per_hour == pytest.approx(8.0)

    def test_better_availability_cuts_rate(self):
        base = OverprovisionConfig()
        improved = OverprovisionConfig(availability=0.9987)
        assert improved.effective_failure_rate_per_hour < (
            base.effective_failure_rate_per_hour * 0.4
        )

    def test_hold_mean_grows_with_recovery(self):
        fast = OverprovisionConfig(recovery_minutes=5.0)
        slow = OverprovisionConfig(recovery_minutes=40.0)
        assert slow.hold_mean_hours > fast.hold_mean_hours * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            OverprovisionConfig(n_nodes=0)
        with pytest.raises(ValueError):
            OverprovisionConfig(failure_prob_per_hour=2.0)


class TestAnalytic:
    def test_paper_anchor_40min_is_20_percent(self):
        fraction = required_overprovision_analytic(OverprovisionConfig())
        assert fraction == pytest.approx(0.20, abs=0.025)

    def test_paper_anchor_5min_is_5_percent(self):
        fraction = required_overprovision_analytic(
            OverprovisionConfig(recovery_minutes=5.0)
        )
        assert fraction == pytest.approx(0.05, abs=0.015)

    def test_availability_projection_reduces_overprovision(self):
        base = required_overprovision_analytic(OverprovisionConfig())
        improved = required_overprovision_analytic(
            OverprovisionConfig(availability=0.9987)
        )
        # Paper Section 5.5: ~4x reduction.
        assert base / improved > 2.5

    def test_zero_rate_zero_spares(self):
        config = OverprovisionConfig(availability=1.0 - 1e-12)
        assert required_overprovision_analytic(config) == pytest.approx(0.0, abs=1e-6)


class TestSimulation:
    def test_trial_counts_failures(self):
        simulator = OverprovisionSimulator(OverprovisionConfig(n_trials=1))
        result = simulator.run_trial(spares=100)
        # ~8 failures/hour over 720 hours.
        assert result.n_failures == pytest.approx(5_760, rel=0.1)
        assert result.peak_down > 0

    def test_more_spares_less_blocking(self):
        simulator = OverprovisionSimulator(OverprovisionConfig(n_trials=2))
        assert simulator.blocked_fraction(10) > simulator.blocked_fraction(200)

    def test_simulated_requirement_matches_analytic(self):
        config = OverprovisionConfig(n_trials=3, seed=5)
        simulated = OverprovisionSimulator(config).required_overprovision()
        analytic = required_overprovision_analytic(config)
        assert simulated == pytest.approx(analytic, rel=0.25)

    def test_goodput_accounts_for_stalls(self):
        result = OverprovisionSimulator(OverprovisionConfig(n_trials=1)).run_trial(400)
        assert 0.0 <= result.goodput <= 1.0
        assert result.stall_fraction > 0.0

    def test_sweep_monotone_in_recovery_time(self):
        simulator = OverprovisionSimulator(OverprovisionConfig(n_trials=2))
        results = simulator.sweep(recovery_minutes=(5.0, 40.0))
        assert results[(40.0, BASE_AVAILABILITY)] > results[(5.0, BASE_AVAILABILITY)]

    def test_deterministic_per_seed(self):
        config = OverprovisionConfig(n_trials=1, seed=9)
        a = OverprovisionSimulator(config).run_trial(100)
        b = OverprovisionSimulator(config).run_trial(100)
        assert a == b
