"""Error statistics: MTBE, category comparison, offenders, restriction."""

import math

import pytest

from repro.core.coalesce import CoalescedError
from repro.core.mtbe import ErrorStatistics
from repro.faults.xid import Xid, XidCategory


def _error(t, xid=31, node="n1", pci="0000:07:00", persistence=0.0):
    return CoalescedError(
        time=t, node_id=node, pci_bus=pci, xid=xid, persistence=persistence, n_raw=1
    )


@pytest.fixture()
def stats():
    errors = (
        [_error(float(i), xid=31) for i in range(10)]
        + [_error(100.0 + i, xid=48, pci="0000:46:00") for i in range(2)]
        + [_error(200.0 + i, xid=119, node="n2") for i in range(4)]
        + [_error(300.0 + i, xid=13) for i in range(5)]  # user-induced
    )
    return ErrorStatistics(errors, window_hours=1_000.0, n_nodes=10)


class TestCountsAndExclusion:
    def test_user_codes_excluded_but_counted(self, stats):
        assert stats.total_count == 16
        assert stats.excluded_count == 5
        assert 13 not in stats.counts()

    def test_per_code_counts(self, stats):
        assert stats.counts() == {31: 10, 48: 2, 119: 4}

    def test_unknown_codes_kept(self):
        stats = ErrorStatistics([_error(0.0, xid=999)], 10.0, 1)
        assert stats.total_count == 1
        assert stats.category_share()[XidCategory.UNKNOWN] == 1.0


class TestMtbe:
    def test_all_nodes_mtbe(self, stats):
        assert stats.mtbe_all_nodes_hours(31) == pytest.approx(100.0)

    def test_per_node_mtbe_scales_by_population(self, stats):
        assert stats.mtbe_per_node_hours(31) == pytest.approx(1_000.0)

    def test_overall_mtbe(self, stats):
        # 10,000 node-hours / 16 errors.
        assert stats.overall_mtbe_node_hours() == pytest.approx(625.0)

    def test_absent_code_infinite(self, stats):
        assert math.isinf(stats.mtbe_all_nodes_hours(74))

    def test_combined_mtbe(self, stats):
        assert stats.combined_mtbe_per_node_hours([31, 48]) == pytest.approx(
            10_000.0 / 12
        )

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ErrorStatistics([], window_hours=0.0, n_nodes=1)


class TestMemoryVsHardware:
    def test_ratio_uses_paper_partition(self):
        errors = [_error(float(i), xid=48) for i in range(2)] + [
            _error(100.0 + i, xid=119) for i in range(60)
        ]
        stats = ErrorStatistics(errors, 1_000.0, 10)
        assert stats.memory_vs_hardware_ratio() == pytest.approx(30.0)

    def test_ratio_on_shared_dataset_matches_paper(self, study):
        # The headline ">30x" claim, end-to-end.
        ratio = study.error_statistics().memory_vs_hardware_ratio()
        assert 15 < ratio < 80

    def test_uncontained_does_not_enter_memory_side(self):
        errors = [_error(float(i), xid=95) for i in range(1_000)] + [
            _error(5_000.0, xid=48)
        ] + [_error(6_000.0 + i, xid=119) for i in range(10)]
        stats = ErrorStatistics(errors, 1_000.0, 10)
        # If XID 95 counted as memory, the ratio would collapse below 1.
        assert stats.memory_vs_hardware_ratio() > 5


class TestOffenders:
    def test_top_offenders_and_share(self):
        errors = [_error(float(i), xid=95, pci="0000:07:00") for i in range(99)] + [
            _error(500.0, xid=95, pci="0000:46:00")
        ]
        stats = ErrorStatistics(errors, 1_000.0, 10)
        (gpu, count), = stats.top_offenders(95, 1)
        assert gpu == ("n1", "0000:07:00") and count == 99
        assert stats.offender_share(95, 1) == pytest.approx(0.99)

    def test_offender_share_absent_code(self, stats):
        assert stats.offender_share(74) == 0.0


class TestRestriction:
    def test_exclude_gpus(self, stats):
        restricted = stats.restricted(exclude_gpus=[("n1", "0000:07:00")])
        assert restricted.counts() == {48: 2, 119: 4}

    def test_exclude_xids(self, stats):
        restricted = stats.restricted(exclude_xids=[31])
        assert 31 not in restricted.counts()
        assert restricted.total_count == 6

    def test_restriction_preserves_window(self, stats):
        restricted = stats.restricted(exclude_xids=[31])
        assert restricted.window_hours == stats.window_hours
        assert restricted.n_nodes == stats.n_nodes


class TestTable1Rows:
    def test_rows_sorted_and_complete(self, stats):
        rows = stats.table1_rows()
        assert [r.xid for r in rows] == [31, 48, 119]
        mmu = rows[0]
        assert mmu.count == 10
        assert mmu.persistence.count == 10

    def test_persistence_summary(self):
        errors = [_error(0.0, persistence=2.0), _error(100.0, persistence=4.0)]
        stats = ErrorStatistics(errors, 10.0, 1)
        summary = stats.persistence_summary(31)
        assert summary.mean == pytest.approx(3.0)
