"""Reliability statistics: CIs, distribution fits, trend tests."""

import numpy as np
import pytest

from repro.core.coalesce import CoalescedError
from repro.core.reliability import (
    ConfidenceInterval,
    fit_exponential,
    fit_weibull,
    interarrival_times,
    mtbe_confidence_interval,
    trend_test,
)


def _errors(times):
    return [CoalescedError(float(t), "n1", "p", 31, 0.0, 1) for t in times]


class TestInterarrival:
    def test_gaps(self):
        gaps = interarrival_times(_errors([0.0, 10.0, 30.0]))
        assert list(gaps) == [10.0, 20.0]

    def test_unsorted_input_ok(self):
        gaps = interarrival_times(_errors([30.0, 0.0, 10.0]))
        assert list(gaps) == [10.0, 20.0]

    def test_too_few(self):
        assert interarrival_times(_errors([1.0])).size == 0


class TestConfidenceInterval:
    def test_covers_true_mean_of_poisson_process(self):
        rng = np.random.default_rng(0)
        true_mtbe_hours = 2.0
        times = np.cumsum(rng.exponential(true_mtbe_hours * 3600.0, size=800))
        interval = mtbe_confidence_interval(_errors(times))
        assert interval.contains(true_mtbe_hours)
        assert interval.low < interval.point < interval.high

    def test_narrower_with_more_data(self):
        rng = np.random.default_rng(1)
        small = _errors(np.cumsum(rng.exponential(3_600.0, size=30)))
        large = _errors(np.cumsum(rng.exponential(3_600.0, size=3_000)))
        wide = mtbe_confidence_interval(small)
        narrow = mtbe_confidence_interval(large)
        assert narrow.relative_width < wide.relative_width

    def test_deterministic_per_seed(self):
        errors = _errors([0, 100, 300, 700, 1500])
        a = mtbe_confidence_interval(errors, seed=3)
        b = mtbe_confidence_interval(errors, seed=3)
        assert a == b

    def test_needs_three_errors(self):
        with pytest.raises(ValueError):
            mtbe_confidence_interval(_errors([0.0, 1.0]))


class TestExponentialFit:
    def test_recovers_rate(self):
        rng = np.random.default_rng(2)
        gaps = rng.exponential(7_200.0, size=5_000)  # mean 2h
        fit = fit_exponential(gaps)
        assert fit.rate_per_hour == pytest.approx(0.5, rel=0.05)
        assert fit.mean_hours == pytest.approx(2.0, rel=0.05)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential(np.zeros(3))


class TestWeibullFit:
    def test_recovers_exponential_as_shape_one(self):
        rng = np.random.default_rng(3)
        gaps = rng.exponential(3_600.0, size=4_000)
        fit = fit_weibull(gaps)
        assert fit.shape == pytest.approx(1.0, abs=0.05)
        assert fit.is_memoryless

    def test_detects_bursty_process(self):
        rng = np.random.default_rng(4)
        gaps = rng.weibull(0.5, size=4_000) * 3_600.0
        fit = fit_weibull(gaps)
        assert fit.shape == pytest.approx(0.5, abs=0.06)
        assert fit.is_bursty

    def test_recovers_scale(self):
        rng = np.random.default_rng(5)
        gaps = rng.weibull(1.5, size=6_000) * 7_200.0  # scale 2h
        fit = fit_weibull(gaps)
        assert fit.scale_hours == pytest.approx(2.0, rel=0.1)

    def test_weibull_beats_exponential_on_bursty_data(self):
        rng = np.random.default_rng(6)
        gaps = rng.weibull(0.4, size=2_000) * 3_600.0
        assert fit_weibull(gaps).log_likelihood > fit_exponential(gaps).log_likelihood

    def test_needs_enough_data(self):
        with pytest.raises(ValueError):
            fit_weibull(np.array([1.0, 2.0]))


class TestTrendTest:
    def test_uniform_arrivals_stationary(self):
        rng = np.random.default_rng(7)
        times = rng.uniform(0, 1e6, size=500)
        result = trend_test(_errors(times), 1e6)
        assert result.stationary

    def test_early_concentration_is_improvement(self):
        rng = np.random.default_rng(8)
        times = rng.uniform(0, 2e5, size=300)  # all in the first 20%
        result = trend_test(_errors(times), 1e6)
        assert result.improving

    def test_late_concentration_is_degradation(self):
        rng = np.random.default_rng(9)
        times = rng.uniform(8e5, 1e6, size=300)
        result = trend_test(_errors(times), 1e6)
        assert result.degrading

    def test_validation(self):
        with pytest.raises(ValueError):
            trend_test(_errors([1.0]), 10.0)
        with pytest.raises(ValueError):
            trend_test(_errors([1.0, 2.0, 3.0]), 0.0)


class TestRollingMtbe:
    def test_buckets_cover_window(self):
        from repro.core.reliability import rolling_mtbe

        errors = _errors([1e5, 2e5, 9e5])
        series = rolling_mtbe(errors, 1e6, bucket_days=5.0, n_nodes=10)
        assert len(series) >= 2
        midpoints = [m for m, _ in series]
        assert midpoints == sorted(midpoints)

    def test_empty_bucket_infinite(self):
        from repro.core.reliability import rolling_mtbe
        import math

        errors = _errors([100.0])
        series = rolling_mtbe(errors, 20 * 86_400.0, bucket_days=10.0, n_nodes=5)
        assert math.isinf(series[-1][1])
        assert series[0][1] == 10 * 24 * 5  # one error in a 1,200 node-hour bucket

    def test_validation(self):
        from repro.core.reliability import rolling_mtbe

        with pytest.raises(ValueError):
            rolling_mtbe([], 0.0)


class TestOnDataset:
    def test_offender_stream_is_bursty_background_is_not(self, study):
        """The uncontained offender produces a clearly sub-exponential
        (bursty) arrival process; GSP arrivals are near-memoryless."""
        errors = study.error_statistics().errors
        uncontained = [e for e in errors if e.xid == 95]
        gsp = [e for e in errors if e.xid == 119]
        weibull_unc = fit_weibull(interarrival_times(uncontained))
        weibull_gsp = fit_weibull(interarrival_times(gsp))
        assert weibull_unc.shape < weibull_gsp.shape

    def test_mtbe_interval_brackets_table1(self, study):
        errors = [e for e in study.error_statistics().errors if e.xid == 31]
        interval = mtbe_confidence_interval(errors)
        # System-hours MTBE for MMU is ~1.09h in Table 1.
        assert interval.contains(1.09) or abs(interval.point - 1.09) < 0.4
