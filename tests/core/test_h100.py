"""Section 6: H100 early-deployment analysis."""

import pytest

from repro.core.h100 import H100Analyzer
from repro.faults.xid import Xid


class TestH100Report:
    def test_counts_match_section6(self, h100_study):
        report = H100Analyzer(h100_study.error_statistics()).report()
        # Paper: 18 MMU, 10 DBE, 5 RRF, 9 contained, 70 XID-136 events.
        assert report.counts.get(int(Xid.MMU), 0) == pytest.approx(18, abs=4)
        assert report.dbe_count == pytest.approx(10, abs=3)
        assert report.rrf_count == pytest.approx(5, abs=3)
        assert report.xid136_count == pytest.approx(70, abs=8)

    def test_mtbe_near_4114_hours(self, h100_study):
        report = H100Analyzer(h100_study.error_statistics()).report()
        assert report.mtbe_node_hours == pytest.approx(4_114, rel=0.12)

    def test_remap_anomaly_detected(self, h100_study):
        report = H100Analyzer(h100_study.error_statistics()).report()
        assert report.rre_count == 0
        assert report.has_remap_anomaly

    def test_xid136_dominates(self, h100_study):
        report = H100Analyzer(h100_study.error_statistics()).report()
        assert report.xid136_share > 0.5

    def test_dbe_followed_by_rrf_not_rre(self, h100_study):
        analyzer = H100Analyzer(h100_study.error_statistics())
        successors = analyzer.dbe_successors(h100_study.errors)
        assert successors[int(Xid.RRE)] == 0.0
        assert successors[int(Xid.RRF)] > 0.2

    def test_h100_events_only_on_gh_nodes(self, h100_dataset):
        assert all(e.node_id.startswith("gh") for e in h100_dataset.trace)
