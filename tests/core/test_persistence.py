"""Persistence analysis: lost GPU-hours and tail accounting (Section 4.3)."""

import pytest

from repro.core.coalesce import CoalescedError
from repro.core.persistence import PersistenceAnalyzer


def _error(persistence, xid=95, n_raw=2, t=0.0):
    return CoalescedError(
        time=t, node_id="n1", pci_bus="p", xid=xid, persistence=persistence,
        n_raw=n_raw,
    )


class TestLostGpuHours:
    def test_total_is_sum_of_persistence(self):
        analyzer = PersistenceAnalyzer([_error(3_600.0), _error(1_800.0)])
        assert analyzer.total_lost_gpu_hours() == pytest.approx(1.5)

    def test_empty(self):
        analyzer = PersistenceAnalyzer([])
        assert analyzer.total_lost_gpu_hours() == 0.0
        assert analyzer.tail_analysis().tail_share == 0.0


class TestTailAnalysis:
    def test_tail_dominates_when_distribution_is_heavy(self):
        # 99 short + 1 huge: the single tail error carries nearly all loss —
        # the paper's "91% of lost hours from beyond-P95 errors".
        errors = [_error(1.0, t=float(i)) for i in range(99)] + [_error(50_000.0)]
        analysis = PersistenceAnalyzer(errors).tail_analysis()
        assert analysis.tail_share > 0.9

    def test_tail_share_zero_for_uniform(self):
        errors = [_error(10.0, t=float(i)) for i in range(100)]
        analysis = PersistenceAnalyzer(errors).tail_analysis()
        assert analysis.tail_share == 0.0

    def test_tail_computed_per_code(self):
        # A code with uniformly-large persistence must not put another
        # code's small errors into the tail.
        errors = [_error(1.0, xid=31, t=float(i)) for i in range(50)] + [
            _error(1_000.0, xid=95, t=float(i)) for i in range(50)
        ]
        analysis = PersistenceAnalyzer(errors).tail_analysis()
        assert analysis.tail_share < 0.1

    def test_shared_dataset_tail_share_matches_paper(self, study):
        # Section 4.3: ~91% of lost GPU-hours sit beyond the P95.
        share = study.persistence().tail_analysis().tail_share
        assert share > 0.6


class TestWatchlist:
    def test_longest(self):
        errors = [_error(float(p), t=float(p)) for p in (5, 50, 500)]
        longest = PersistenceAnalyzer(errors).longest(2)
        assert [e.persistence for e in longest] == [500.0, 50.0]

    def test_above_threshold(self):
        errors = [_error(float(p), t=float(p)) for p in (5, 50, 500)]
        assert len(PersistenceAnalyzer(errors).above_threshold(40.0)) == 2


class TestBurstiness:
    def test_mean_and_max_raw_lines(self):
        errors = [_error(1.0, n_raw=2), _error(1.0, n_raw=10, t=50.0)]
        mean, maximum = PersistenceAnalyzer(errors).burstiness(95)
        assert mean == pytest.approx(6.0)
        assert maximum == 10

    def test_absent_code(self):
        assert PersistenceAnalyzer([]).burstiness(95) == (0.0, 0.0)

    def test_uncontained_burstiness_in_dataset(self, study):
        # The offender GPU's bursts must be far denser than a typical code's.
        analyzer = study.persistence()
        mean95, max95 = analyzer.burstiness(95)
        mean63, _ = analyzer.burstiness(63)
        assert mean95 > 10 * max(mean63, 1.0)
        assert max95 > 100
