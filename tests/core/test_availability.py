"""Availability analysis: MTTF/MTTR and Figure 9c."""

import pytest

from repro.core.availability import AvailabilityAnalyzer
from repro.core.coalesce import CoalescedError
from repro.core.mtbe import ErrorStatistics
from repro.slurm.accounting import NodeEvent


def _stats(n_errors, window_hours=1_000.0, n_nodes=10):
    errors = [
        CoalescedError(float(i), "n1", "p", 31, 0.0, 1) for i in range(n_errors)
    ]
    return ErrorStatistics(errors, window_hours, n_nodes)


class TestAvailability:
    def test_mttf_is_overall_per_node_mtbe(self):
        analyzer = AvailabilityAnalyzer([], _stats(100))
        assert analyzer.mttf_hours() == pytest.approx(100.0)

    def test_availability_formula(self):
        events = [NodeEvent("n1", 0.0, 0.5, "xid31")] * 4
        analyzer = AvailabilityAnalyzer(events, _stats(100))
        # MTTF 100, MTTR 0.5 -> 100/100.5
        assert analyzer.availability() == pytest.approx(100.0 / 100.5)

    def test_no_incidents_full_availability(self):
        analyzer = AvailabilityAnalyzer([], _stats(100))
        assert analyzer.availability() == pytest.approx(1.0)
        assert analyzer.mttr_hours() == 0.0

    def test_no_errors_unit_availability(self):
        analyzer = AvailabilityAnalyzer([], _stats(0))
        assert analyzer.availability() == 1.0

    def test_report_fields(self):
        events = [NodeEvent("n1", 0.0, 1.0, "xid31"), NodeEvent("n2", 10.0, 3.0, "x")]
        report = AvailabilityAnalyzer(events, _stats(50)).report()
        assert report.n_incidents == 2
        assert report.mttr_hours == pytest.approx(2.0)
        assert report.total_downtime_node_hours == pytest.approx(4.0)

    def test_downtime_minutes_per_day(self):
        events = [NodeEvent("n1", 0.0, 0.5, "x")]
        report = AvailabilityAnalyzer(events, _stats(100)).report()
        # (1 - 100/100.5) * 1440 ~ 7.16 min/day: the paper's "7 minutes".
        assert report.downtime_minutes_per_day == pytest.approx(7.16, abs=0.1)


class TestFigure9c:
    def test_distribution_summary(self):
        events = [NodeEvent("n1", 0.0, h, "x") for h in (0.1, 0.2, 0.3, 10.0)]
        dist = AvailabilityAnalyzer(events, _stats(10)).unavailability_distribution()
        assert dist["mean_hours"] == pytest.approx(2.65)
        assert dist["max_hours"] == 10.0
        assert dist["p50_hours"] == pytest.approx(0.25)

    def test_histogram(self):
        events = [NodeEvent("n1", 0.0, h, "x") for h in (0.05, 0.3, 3.0)]
        edges, counts = AvailabilityAnalyzer(events, _stats(10)).unavailability_histogram(
            edges_hours=(0, 0.1, 1, 10)
        )
        assert counts == (1, 1, 1)

    def test_empty_distribution(self):
        dist = AvailabilityAnalyzer([], _stats(10)).unavailability_distribution()
        assert dist["mean_hours"] == 0.0


class TestDatasetAvailability:
    def test_two_nines_on_shared_dataset(self, study):
        report = study.availability().report()
        # Paper: ~99.5% per-node availability, MTTR ~0.3 h, MTTF ~67 h.
        assert report.availability == pytest.approx(0.995, abs=0.004)
        assert report.mttr_hours == pytest.approx(0.3, abs=0.12)
        assert report.mttf_hours == pytest.approx(67.0, rel=0.15)
