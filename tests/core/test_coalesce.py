"""Stage II: Algorithm 1 — coalescing and persistence."""

import pytest

from repro.core.coalesce import CoalesceConfig, CoalescedError, coalesce_errors, to_arrays
from repro.core.parsing import RawXidRecord


def _record(t, msg="same", node="n1", pci="0000:07:00", xid=95):
    return RawXidRecord(time=t, node_id=node, pci_bus=pci, xid=xid, message=msg)


class TestAlgorithm1:
    def test_burst_merges_into_one_error(self):
        records = [_record(t) for t in (0.0, 3.0, 6.0, 10.0)]
        errors = coalesce_errors(records)
        assert len(errors) == 1
        error = errors[0]
        assert error.time == 0.0
        assert error.persistence == pytest.approx(10.0)
        assert error.n_raw == 4

    def test_gap_beyond_window_splits(self):
        records = [_record(t) for t in (0.0, 3.0, 10.0, 12.0)]
        errors = coalesce_errors(records)
        assert len(errors) == 2
        assert errors[0].persistence == pytest.approx(3.0)
        assert errors[1].time == 10.0

    def test_boundary_gap_exactly_window_merges(self):
        # Algorithm 1 uses <= dt.
        records = [_record(0.0), _record(5.0)]
        assert len(coalesce_errors(records)) == 1

    def test_different_messages_never_merge(self):
        records = [_record(0.0, msg="a"), _record(1.0, msg="b")]
        assert len(coalesce_errors(records)) == 2

    def test_different_gpus_never_merge(self):
        records = [_record(0.0), _record(1.0, pci="0000:46:00")]
        assert len(coalesce_errors(records)) == 2

    def test_different_nodes_never_merge(self):
        records = [_record(0.0), _record(1.0, node="n2")]
        assert len(coalesce_errors(records)) == 2

    def test_different_xids_never_merge(self):
        records = [_record(0.0, xid=119), _record(1.0, xid=122)]
        assert len(coalesce_errors(records)) == 2

    def test_input_order_irrelevant(self):
        records = [_record(t) for t in (6.0, 0.0, 10.0, 3.0)]
        errors = coalesce_errors(records)
        assert len(errors) == 1 and errors[0].persistence == pytest.approx(10.0)

    def test_single_record_zero_persistence(self):
        errors = coalesce_errors([_record(42.0)])
        assert errors[0].persistence == 0.0 and errors[0].n_raw == 1

    def test_output_sorted_by_time(self):
        records = [
            _record(100.0, node="n2"),
            _record(0.0),
            _record(50.0, node="n3"),
        ]
        errors = coalesce_errors(records)
        assert [e.time for e in errors] == [0.0, 50.0, 100.0]


class TestOneDayCutoff:
    def test_very_long_burst_is_split_at_cutoff(self):
        # A 2-day continuous burst (the paper's 17-day saga, scaled): splits
        # into runs of at most one day each.
        records = [_record(float(t)) for t in range(0, 2 * 86_400 + 8_000, 4)]
        errors = coalesce_errors(records)
        assert len(errors) >= 2
        assert all(e.persistence <= 86_400.0 for e in errors)
        total = sum(e.n_raw for e in errors)
        assert total == len(records)

    def test_custom_cutoff(self):
        records = [_record(float(t)) for t in range(0, 100, 4)]
        errors = coalesce_errors(records, CoalesceConfig(max_persistence=30.0))
        assert all(e.persistence <= 30.0 for e in errors)
        assert len(errors) == 4  # 96s span split into <=30s runs


class TestConfig:
    def test_window_sensitivity(self):
        records = [_record(t) for t in (0.0, 8.0, 16.0)]
        narrow = coalesce_errors(records, CoalesceConfig(window_seconds=5.0))
        wide = coalesce_errors(records, CoalesceConfig(window_seconds=10.0))
        assert len(narrow) == 3 and len(wide) == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CoalesceConfig(window_seconds=0.0)
        with pytest.raises(ValueError):
            CoalesceConfig(max_persistence=-1.0)


class TestToArrays:
    def test_columnar_view(self):
        errors = [
            CoalescedError(1.0, "n1", "p", 95, 2.0, 3),
            CoalescedError(5.0, "n1", "p", 31, 0.0, 1),
        ]
        arrays = to_arrays(errors)
        assert list(arrays["xid"]) == [95, 31]
        assert list(arrays["n_raw"]) == [3, 1]
