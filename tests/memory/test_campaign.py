"""Fault-injection campaign API."""

import pytest

from repro.memory.campaign import CampaignConfig, run_campaign
from repro.memory.device import GpuMemory, MemoryEventKind


@pytest.fixture(scope="module")
def a100_result():
    from repro.memory.remap import RowRemapper

    # Healthy banks need enough spares (and device budget) to last the
    # whole campaign or the nominal 50% remap-success rate drifts down as
    # they also run dry.
    memory = GpuMemory(supports_containment=True, containment_success_prob=0.43)
    memory.remapper = RowRemapper(spares_per_bank=64, max_total_remaps=100_000)
    return run_campaign(memory, CampaignConfig(n_faults=800, seed=5))


class TestCampaign:
    def test_outcome_accounting(self, a100_result):
        dbe = a100_result.count(MemoryEventKind.DBE)
        rre = a100_result.count(MemoryEventKind.RRE)
        rrf = a100_result.count(MemoryEventKind.RRF)
        assert dbe == rre + rrf  # every DBE resolved one way or the other
        assert a100_result.sbe_corrected > 300

    def test_rates_match_figure7(self, a100_result):
        assert a100_result.remap_success_rate == pytest.approx(0.5, abs=0.08)
        assert a100_result.containment_success_rate == pytest.approx(0.43, abs=0.1)
        assert a100_result.dbe_alleviation_rate == pytest.approx(0.71, abs=0.1)

    def test_resets_track_uncontained(self, a100_result):
        assert a100_result.gpu_resets == a100_result.count(
            MemoryEventKind.UNCONTAINED
        )

    def test_pages_offlined_on_containment(self, a100_result):
        assert a100_result.pages_offlined == a100_result.count(
            MemoryEventKind.CONTAINED
        )

    def test_a40_resets_on_every_rrf(self):
        result = run_campaign(
            GpuMemory(supports_containment=False),
            CampaignConfig(n_faults=400, seed=6),
        )
        assert result.gpu_resets == result.count(MemoryEventKind.RRF)
        assert result.containment_success_rate == 0.0

    def test_healthy_banks_never_rrf(self):
        result = run_campaign(
            GpuMemory(),
            CampaignConfig(n_faults=200, exhausted_bank_fraction=0.0, seed=7),
        )
        assert result.count(MemoryEventKind.RRF) == 0
        assert result.remap_success_rate == 1.0

    def test_pure_sbe_campaign_logs_nothing(self):
        result = run_campaign(
            GpuMemory(), CampaignConfig(n_faults=200, dbe_fraction=0.0, seed=8)
        )
        assert result.events == []
        assert result.sbe_corrected == 200

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(n_faults=0)
        with pytest.raises(ValueError):
            CampaignConfig(dbe_fraction=1.5)

    def test_deterministic(self):
        a = run_campaign(GpuMemory(), CampaignConfig(n_faults=100, seed=9))
        b = run_campaign(GpuMemory(), CampaignConfig(n_faults=100, seed=9))
        assert [e.kind for e in a.events] == [e.kind for e in b.events]
