"""SECDED code: correctness of encode/decode/correct/detect."""

import numpy as np
import pytest

from repro.memory.secded import (
    CODEWORD_BITS,
    DATA_BITS,
    DecodeStatus,
    decode,
    encode,
    flip_bits,
    random_flips,
)


class TestEncode:
    def test_codeword_width(self):
        assert encode((1 << DATA_BITS) - 1) < (1 << CODEWORD_BITS)

    def test_rejects_oversized_data(self):
        with pytest.raises(ValueError):
            encode(1 << DATA_BITS)

    def test_distinct_words_distinct_codewords(self):
        assert encode(0x1234) != encode(0x1235)


class TestRoundTrip:
    @pytest.mark.parametrize("data", [0, 1, 0xFF, 0xDEADBEEF, (1 << 64) - 1,
                                      0xAAAAAAAAAAAAAAAA])
    def test_clean_decode(self, data):
        result = decode(encode(data))
        assert result.status is DecodeStatus.OK
        assert result.data == data


class TestSingleBitCorrection:
    def test_every_single_flip_corrected(self):
        data = 0xCAFEBABE12345678
        codeword = encode(data)
        for position in range(CODEWORD_BITS):
            result = decode(flip_bits(codeword, [position]))
            assert result.status is DecodeStatus.CORRECTED_SBE, position
            assert result.data == data, position

    def test_corrected_position_reported(self):
        codeword = encode(42)
        result = decode(flip_bits(codeword, [17]))
        assert result.corrected_position == 17


class TestDoubleBitDetection:
    def test_every_double_flip_detected_not_corrected(self):
        data = 0x0123456789ABCDEF
        codeword = encode(data)
        rng = np.random.default_rng(0)
        for _ in range(300):
            a, b = random_flips(rng, 2)
            result = decode(flip_bits(codeword, [int(a), int(b)]))
            assert result.status is DecodeStatus.DETECTED_DBE, (a, b)

    def test_exhaustive_double_flips_on_one_word(self):
        codeword = encode(0xF0F0F0F0F0F0F0F0)
        for a in range(0, CODEWORD_BITS, 7):  # strided exhaustive sample
            for b in range(a + 1, CODEWORD_BITS):
                result = decode(flip_bits(codeword, [a, b]))
                assert result.status is DecodeStatus.DETECTED_DBE


class TestBeyondDesign:
    def test_triple_flips_never_report_ok_data_as_corrected_silently_wrong(self):
        # SECDED can mis-correct triple errors: that's inherent; but it must
        # never report a *clean* OK for a corrupted word unless the flips
        # alias to another valid codeword. We only assert the decoder stays
        # well-defined over many samples.
        codeword = encode(7)
        rng = np.random.default_rng(1)
        statuses = set()
        for _ in range(300):
            flips = [int(x) for x in random_flips(rng, 3)]
            statuses.add(decode(flip_bits(codeword, flips)).status)
        assert DecodeStatus.DETECTED_DBE not in statuses or True
        assert statuses  # decoder never raised

    def test_flip_bits_validates_positions(self):
        with pytest.raises(ValueError):
            flip_bits(0, [CODEWORD_BITS])

    def test_decode_validates_width(self):
        with pytest.raises(ValueError):
            decode(1 << CODEWORD_BITS)
