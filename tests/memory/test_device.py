"""GPU memory model: remapping, containment, Figure-3 event sequences."""

import numpy as np
import pytest

from repro.memory.containment import ContainmentOutcome, ContainmentUnit
from repro.memory.device import GpuMemory, MemoryEventKind
from repro.memory.remap import RemapOutcome, RowRemapper


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestRowRemapper:
    def test_remap_succeeds_until_spares_exhausted(self):
        remapper = RowRemapper(n_banks=2, spares_per_bank=2)
        assert remapper.request_remap((0, 1)) is RemapOutcome.REMAPPED
        assert remapper.request_remap((0, 2)) is RemapOutcome.REMAPPED
        assert remapper.request_remap((0, 3)) is RemapOutcome.FAILED
        # The other bank still has spares.
        assert remapper.request_remap((1, 1)) is RemapOutcome.REMAPPED

    def test_duplicate_remap_is_idempotent(self):
        remapper = RowRemapper()
        remapper.request_remap((0, 1))
        assert remapper.request_remap((0, 1)) is RemapOutcome.ALREADY_REMAPPED
        assert remapper.total_remapped == 1

    def test_device_wide_budget(self):
        remapper = RowRemapper(n_banks=4, spares_per_bank=10, max_total_remaps=3)
        for row in range(3):
            assert remapper.request_remap((row % 4, row)) is RemapOutcome.REMAPPED
        assert remapper.request_remap((3, 99)) is RemapOutcome.FAILED

    def test_reset_clears_pending(self):
        remapper = RowRemapper()
        remapper.request_remap((0, 1))
        assert remapper.pending_reset
        remapper.acknowledge_reset()
        assert not remapper.pending_reset

    def test_bank_bounds(self):
        with pytest.raises(ValueError):
            RowRemapper(n_banks=2).request_remap((2, 0))


class TestContainmentUnit:
    def test_unsupported_goes_straight_to_error_state(self, rng):
        unit = ContainmentUnit(supported=False)
        result = unit.contain(1, rng)
        assert result.outcome is ContainmentOutcome.UNSUPPORTED
        assert unit.in_error_state

    def test_success_offlines_page(self, rng):
        unit = ContainmentUnit(success_prob=1.0)
        result = unit.contain(7, rng, owning_pid=99)
        assert result.outcome is ContainmentOutcome.CONTAINED
        assert result.page_offlined and unit.is_offlined(7)
        assert result.killed_pid == 99
        assert not unit.in_error_state

    def test_failure_sets_error_state(self, rng):
        unit = ContainmentUnit(success_prob=0.0)
        assert unit.contain(7, rng).outcome is ContainmentOutcome.UNCONTAINED
        assert unit.in_error_state
        unit.reset()
        assert not unit.in_error_state

    def test_offline_budget(self, rng):
        unit = ContainmentUnit(success_prob=1.0, max_offlined_pages=1)
        unit.contain(1, rng)
        result = unit.contain(2, rng)
        assert result.outcome is ContainmentOutcome.CONTAINED
        assert not result.page_offlined  # budget exhausted, still contained


class TestGpuMemoryFlow:
    def test_clean_read(self, rng):
        memory = GpuMemory()
        memory.write((0, 1, 0), 0xABCD)
        data, events = memory.read((0, 1, 0), rng)
        assert data == 0xABCD and events == []

    def test_sbe_corrected_silently(self, rng):
        memory = GpuMemory()
        memory.write((0, 1, 0), 0xABCD)
        memory.inject_bit_flips((0, 1, 0), [9])
        data, events = memory.read((0, 1, 0), rng)
        assert data == 0xABCD
        assert events == []  # SBEs are never logged (paper Section 2.2)
        assert memory.sbe_corrected == 1

    def test_two_sbes_same_address_trigger_remap_without_dbe(self, rng):
        # Table 1's RRE definition: 1 DBE *or* 2 SBEs at the same address.
        memory = GpuMemory()
        memory.write((0, 1, 0), 5)
        for _ in range(2):
            memory.inject_bit_flips((0, 1, 0), [3])
            _, events = memory.read((0, 1, 0), rng)
        kinds = [e.kind for e in events]
        assert kinds == [MemoryEventKind.RRE]

    def test_dbe_remap_success_sequence(self, rng):
        memory = GpuMemory()
        memory.write((0, 1, 0), 5)
        memory.inject_bit_flips((0, 1, 0), [3, 44])
        data, events = memory.read((0, 1, 0), rng)
        assert data is None  # uncorrectable: consumer sees poison
        assert [e.kind for e in events] == [MemoryEventKind.DBE, MemoryEventKind.RRE]
        assert memory.operable

    def test_rrf_then_containment_sequence(self, rng):
        memory = GpuMemory(containment_success_prob=1.0)
        memory.remapper.exhaust_bank(0)
        memory.write((0, 1, 0), 5)
        memory.inject_bit_flips((0, 1, 0), [3, 44])
        _, events = memory.read((0, 1, 0), rng, owning_pid=42)
        assert [e.kind for e in events] == [
            MemoryEventKind.DBE, MemoryEventKind.RRF, MemoryEventKind.CONTAINED
        ]
        assert memory.operable  # contained: GPU stays usable

    def test_rrf_then_uncontained_leaves_gpu_inoperable(self, rng):
        memory = GpuMemory(containment_success_prob=0.0)
        memory.remapper.exhaust_bank(0)
        memory.write((0, 1, 0), 5)
        memory.inject_bit_flips((0, 1, 0), [3, 44])
        _, events = memory.read((0, 1, 0), rng)
        assert events[-1].kind is MemoryEventKind.UNCONTAINED
        assert not memory.operable
        memory.reset()
        assert memory.operable

    def test_a40_has_no_containment_events(self, rng):
        memory = GpuMemory(supports_containment=False)
        memory.remapper.exhaust_bank(0)
        memory.write((0, 1, 0), 5)
        memory.inject_bit_flips((0, 1, 0), [3, 44])
        _, events = memory.read((0, 1, 0), rng)
        kinds = {e.kind for e in events}
        assert MemoryEventKind.CONTAINED not in kinds
        assert MemoryEventKind.UNCONTAINED not in kinds
        assert not memory.operable  # straight to the error state

    def test_event_xids_match_catalog(self, rng):
        assert MemoryEventKind.DBE.value == 48
        assert MemoryEventKind.RRE.value == 63
        assert MemoryEventKind.RRF.value == 64
        assert MemoryEventKind.CONTAINED.value == 94
        assert MemoryEventKind.UNCONTAINED.value == 95
