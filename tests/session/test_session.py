"""The session layer: RunConfig, Session wiring, and parallel identity."""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import pytest

from repro.session import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    RunConfig,
    Session,
    SessionError,
)

SCALE, SEED = 0.004, 3


def make_config(**kwargs):
    kwargs.setdefault("scale", SCALE)
    kwargs.setdefault("seed", SEED)
    return RunConfig(**kwargs)


class TestRunConfig:
    def test_defaults(self):
        config = RunConfig()
        assert config.scale == DEFAULT_SCALE
        assert config.seed == DEFAULT_SEED
        assert config.workers == 1
        assert config.jobs == 1
        assert config.dataset is None and config.store is None

    @pytest.mark.parametrize("bad", [
        {"scale": 0.0}, {"scale": -1.0},
        {"workers": 0}, {"workers": -2},
        {"jobs": 0},
        {"format": "yaml"},
    ])
    def test_validation(self, bad):
        with pytest.raises(SessionError):
            RunConfig(**bad)

    def test_validation_is_exit_2_material(self):
        """SessionError subclasses ValueError and maps to CLI exit 2."""
        assert issubclass(SessionError, ValueError)

    def test_hashable_and_comparable(self):
        a, b = make_config(), make_config()
        assert a == b and hash(a) == hash(b)
        assert len({a, b, make_config(seed=9)}) == 2

    def test_digest_ignores_execution_and_presentation_knobs(self):
        base = make_config()
        for variant in (
            make_config(workers=8),
            make_config(jobs=4),
            make_config(format="json"),
            make_config(output_dir=Path("/tmp/out")),
        ):
            assert variant.digest() == base.digest()

    def test_digest_tracks_data_determining_fields(self):
        base = make_config()
        assert make_config(scale=0.005).digest() != base.digest()
        assert make_config(seed=4).digest() != base.digest()
        assert make_config(store=Path("s")).digest() != base.digest()
        assert make_config(dataset=Path("d")).digest() != base.digest()

    def test_from_args_resolves_all_cores(self):
        import os

        args = argparse.Namespace(scale=SCALE, seed=SEED, workers=None)
        config = RunConfig.from_args(args)
        assert config.workers == (os.cpu_count() or 1)

    def test_from_args_ignores_absent_flags(self):
        config = RunConfig.from_args(argparse.Namespace(seed=11))
        assert config.seed == 11
        assert config.scale == DEFAULT_SCALE
        assert config.workers == 1  # no --workers flag -> serial

    def test_with_(self):
        config = make_config().with_(jobs=3)
        assert config.jobs == 3 and config.scale == SCALE


class TestSession:
    def test_study_is_cached(self):
        session = Session(make_config())
        assert session.study is session.study

    def test_scale_tracks_dataset(self):
        session = Session(make_config())
        assert session.scale == SCALE
        session.study  # force the in-memory synthesis
        assert session.scale == session.dataset.config.scale

    def test_dataset_refuses_on_disk_runs(self, tmp_path):
        session = Session(make_config(dataset=tmp_path))
        with pytest.raises(ValueError):
            session.dataset

    def test_run_stamps_the_config_digest(self):
        session = Session(make_config())
        result = session.run("table1")
        assert result.manifest.config_hashes["run"] == \
            session.config.digest()

    def test_run_many_rejects_bad_jobs(self):
        session = Session(make_config())
        with pytest.raises(SessionError):
            session.run_many(["table1"], jobs=0)

    def test_store_read_through_builds_once(self, tmp_path):
        from repro.store import EventStore

        store_dir = tmp_path / "events"
        session = Session(make_config(store=store_dir))
        session.study
        n_records = EventStore.open(store_dir).n_records
        assert n_records > 0
        # A second session re-opens the store instead of re-ingesting.
        again = Session(make_config(store=store_dir))
        assert again.study.store_hash == session.study.store_hash
        assert EventStore.open(store_dir).n_records == n_records

    def test_store_scale_mismatch_raises(self, tmp_path):
        from repro.store import StoreError

        store_dir = tmp_path / "events"
        Session(make_config(store=store_dir)).study
        with pytest.raises(StoreError):
            Session(make_config(scale=0.005, store=store_dir)).study


class TestParallelIdentity:
    IDS = ("table1", "fig5", "table2")

    @staticmethod
    def render(results):
        return [
            (r.render_json(), json.dumps(r.manifest.to_dict(), sort_keys=True))
            for r in results
        ]

    def test_jobs_fanout_is_byte_identical(self):
        serial = Session(make_config()).run_many(self.IDS)
        fanned = Session(make_config(jobs=2)).run_many(self.IDS)
        assert self.render(serial) == self.render(fanned)

    def test_store_backed_fanout_is_byte_identical(self, tmp_path):
        store_dir = tmp_path / "events"
        serial = Session(make_config(store=store_dir)).run_many(self.IDS)
        fanned = Session(
            make_config(store=store_dir, jobs=3)
        ).run_many(self.IDS)
        assert self.render(serial) == self.render(fanned)

    def test_jobs_cap_at_identifier_count(self):
        # jobs > len(ids) must not spawn idle workers or change results.
        session = Session(make_config(jobs=8))
        results = session.run_many(["table1"])
        assert [r.experiment_id for r in results] == ["table1"]
