"""The CLI exit-code contract, driven by the command registry.

Exit codes: 0 = success, 1 = tolerance/gate failure, 2 = bad input or
store error.  Every registered command carries executable
:class:`~repro.cli.registry.ExitCase` examples; parametrizing over the
registry means a newly registered command is covered here with no test
edits — and the coverage test below fails if it ships without cases.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.cli.registry import COMMANDS

CASES = [
    pytest.param(case, id=f"{name}-{case.expect}-{case.label}")
    for name, command in COMMANDS.items()
    for case in command.cases
]


def run_cli(argv):
    """Run ``main`` mapping argparse's ``SystemExit`` to its code."""
    try:
        return main(argv)
    except SystemExit as error:  # argparse rejects bad/missing arguments
        return int(error.code or 0)


@pytest.mark.parametrize("case", CASES)
def test_exit_case(case, placeholders):
    argv = [arg.format_map(placeholders) for arg in case.argv]
    assert run_cli(argv) == case.expect


def test_every_command_declares_the_contract():
    """Each command pins at least a success and a bad-input example."""
    for name, command in COMMANDS.items():
        expects = {case.expect for case in command.cases}
        assert 0 in expects, f"{name} has no exit-0 case"
        assert 2 in expects, f"{name} has no exit-2 case"
    assert 1 in {c.expect for c in COMMANDS["verify"].cases}, \
        "verify must pin the gate-failure (exit 1) path"


def test_registry_is_complete():
    """The parser and the registry agree on the command set."""
    expected = {"synthesize", "study", "overprovision", "figures",
                "experiment", "verify", "simulate", "monitor", "serve",
                "store", "replay", "trace"}
    assert set(COMMANDS) == expected


def test_unknown_command_exits_2():
    assert run_cli(["frobnicate"]) == 2
