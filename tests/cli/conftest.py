"""Fixtures resolving the registry's ExitCase placeholders.

Each :class:`~repro.cli.registry.ExitCase` argv may reference
``{dataset}``, ``{logs}``, ``{built_store}``, ``{demo_store}``,
``{tmp}`` and ``{absent}``; the session-scoped fixtures here build the
small shared artifacts once so the contract suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.cli import main

#: The tiny dataset the contract cases run against.
SCALE, SEED = "0.004", "3"


@pytest.fixture(scope="session")
def contract_dataset(tmp_path_factory):
    """A synthesized dataset directory (logs + slurm.jsonl)."""
    directory = tmp_path_factory.mktemp("cli-contract") / "data"
    assert main(["synthesize", str(directory),
                 "--scale", SCALE, "--seed", SEED]) == 0
    return directory


@pytest.fixture(scope="session")
def contract_store(contract_dataset, tmp_path_factory):
    """A store built from the contract dataset."""
    directory = tmp_path_factory.mktemp("cli-contract-store") / "events"
    assert main(["store", "build", str(contract_dataset), str(directory),
                 "--scale", SCALE, "--seed", SEED]) == 0
    return directory


@pytest.fixture(scope="session")
def contract_demo_store(tmp_path_factory):
    """The replay demo trace ingested into a columnar store."""
    base = tmp_path_factory.mktemp("cli-contract-demo")
    assert main(["replay", "demo", str(base / "logs"), "--seed", "11"]) == 0
    assert main(["store", "build", str(base / "logs"),
                 str(base / "events")]) == 0
    return base / "events"


@pytest.fixture(scope="session")
def contract_trace(contract_dataset, tmp_path_factory):
    """A --trace directory left behind by a traced study run."""
    directory = tmp_path_factory.mktemp("cli-contract-trace") / "spans"
    assert main(["study", "--dataset", str(contract_dataset),
                 "--scale", SCALE, "--seed", SEED,
                 "--trace", str(directory)]) == 0
    return directory


@pytest.fixture
def placeholders(contract_dataset, contract_store, contract_demo_store,
                 contract_trace, tmp_path):
    return {
        "dataset": contract_dataset,
        "logs": contract_dataset / "logs",
        "built_store": contract_store,
        "demo_store": contract_demo_store,
        "traced": contract_trace,
        "tmp": tmp_path,
        "absent": tmp_path / "absent",
    }
