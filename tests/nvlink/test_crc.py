"""CRC engine: detection guarantees."""

import numpy as np
import pytest

from repro.nvlink.crc import CRC24, CRC32, CrcSpec, crc_bytes


class TestCrcBasics:
    def test_deterministic(self):
        assert crc_bytes(b"hello") == crc_bytes(b"hello")

    def test_width_bound(self):
        assert 0 <= crc_bytes(b"hello", CRC24) < (1 << 24)
        assert 0 <= crc_bytes(b"hello", CRC32) < (1 << 32)

    def test_different_data_different_crc(self):
        assert crc_bytes(b"hello") != crc_bytes(b"hellp")

    def test_specs_differ(self):
        assert crc_bytes(b"x", CRC24) != crc_bytes(b"x", CRC32)


class TestDetection:
    def test_every_single_bit_flip_detected(self):
        data = bytearray(b"NVLink flit payload under test!!")
        reference = crc_bytes(bytes(data))
        for position in range(len(data) * 8):
            corrupted = bytearray(data)
            corrupted[position // 8] ^= 1 << (position % 8)
            assert crc_bytes(bytes(corrupted)) != reference, position

    def test_all_double_flips_in_sample_detected(self):
        data = bytes(range(64))
        reference = crc_bytes(data)
        rng = np.random.default_rng(0)
        n_bits = len(data) * 8
        for _ in range(500):
            a, b = rng.choice(n_bits, size=2, replace=False)
            corrupted = bytearray(data)
            for position in (int(a), int(b)):
                corrupted[position // 8] ^= 1 << (position % 8)
            assert crc_bytes(bytes(corrupted)) != reference

    def test_burst_errors_within_width_detected(self):
        # Any contiguous burst shorter than the CRC width is always caught.
        data = bytes(range(64))
        reference = crc_bytes(data, CRC24)
        for start in range(0, 64 * 8 - 24, 17):
            corrupted = bytearray(data)
            for position in range(start, start + 23):
                corrupted[position // 8] ^= 1 << (position % 8)
            assert crc_bytes(bytes(corrupted), CRC24) != reference

    def test_random_corruption_escape_rate_is_tiny(self):
        # Heavy random corruption escapes with probability ~2^-24.
        data = bytes(range(64))
        reference = crc_bytes(data, CRC24)
        rng = np.random.default_rng(1)
        escapes = 0
        for _ in range(3_000):
            corrupted = bytes(rng.integers(0, 256, size=64, dtype=np.uint8))
            if corrupted != data and crc_bytes(corrupted, CRC24) == reference:
                escapes += 1
        assert escapes <= 1


class TestCustomSpec:
    def test_mask(self):
        spec = CrcSpec("tiny", width=8, polynomial=0x07)
        assert spec.mask == 0xFF
        assert 0 <= crc_bytes(b"abc", spec) < 256
