"""NVLink channel: replay semantics and collective survival."""

import numpy as np
import pytest

from repro.nvlink.link import LinkConfig, NVLinkChannel, TransmitOutcome
from repro.nvlink.transfer import simulate_collective


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestChannel:
    def test_clean_link_delivers_everything(self, rng):
        channel = NVLinkChannel(LinkConfig(bit_error_rate=0.0))
        for _ in range(50):
            assert channel.transmit(b"x" * 256, rng) is TransmitOutcome.DELIVERED
        assert channel.stats.crc_errors_detected == 0
        assert channel.stats.goodput == 1.0

    def test_noisy_link_retries_and_delivers(self, rng):
        channel = NVLinkChannel(LinkConfig(bit_error_rate=2e-4, max_replays=64))
        outcomes = [channel.transmit(b"y" * 256, rng) for _ in range(200)]
        assert all(o is TransmitOutcome.DELIVERED for o in outcomes)
        assert channel.stats.crc_errors_detected > 0
        assert channel.stats.replays == channel.stats.crc_errors_detected
        assert channel.stats.goodput < 1.0

    def test_retry_disabled_fails_on_first_crc_error(self, rng):
        channel = NVLinkChannel(
            LinkConfig(bit_error_rate=0.05, retry_enabled=False)
        )
        outcomes = [channel.transmit(b"z" * 64, rng) for _ in range(50)]
        assert TransmitOutcome.FATAL in outcomes
        assert channel.stats.replays == 0

    def test_hopeless_link_exhausts_replays(self, rng):
        channel = NVLinkChannel(LinkConfig(bit_error_rate=0.2, max_replays=3))
        assert channel.transmit(b"w" * 256, rng) is TransmitOutcome.FATAL
        assert channel.stats.fatal_errors == 1

    def test_transfer_train(self, rng):
        channel = NVLinkChannel(LinkConfig(bit_error_rate=0.0))
        assert channel.transfer([b"a" * 8] * 10, rng) is TransmitOutcome.DELIVERED
        assert channel.stats.packets_sent == 10

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LinkConfig(bit_error_rate=1.5)
        with pytest.raises(ValueError):
            LinkConfig(packet_bytes=0)


class TestCollective:
    def test_crc_retry_masks_link_errors_from_jobs(self):
        # The paper's finding (iii): NVLink errors occur, CRC+replay absorb
        # them, jobs complete.
        result = simulate_collective(
            config=LinkConfig(bit_error_rate=1e-5), n_jobs=60, seed=3
        )
        assert result.total_crc_errors > 50
        assert result.survival_rate == 1.0
        assert result.jobs_with_errors_that_survived == 1.0

    def test_without_retry_every_error_kills_the_job(self):
        result = simulate_collective(
            config=LinkConfig(bit_error_rate=1e-5, retry_enabled=False),
            n_jobs=60,
            seed=3,
        )
        assert result.jobs_with_errors_that_survived == 0.0
        assert result.survival_rate < 0.5

    def test_degraded_link_eventually_fatal_even_with_retry(self):
        result = simulate_collective(
            config=LinkConfig(bit_error_rate=3e-3, max_replays=2),
            n_jobs=30,
            seed=3,
        )
        assert result.survival_rate < 0.5
        assert result.total_fatal > 0

    def test_goodput_degrades_with_error_rate(self):
        clean = simulate_collective(
            config=LinkConfig(bit_error_rate=0.0), n_jobs=10, seed=3
        )
        noisy = simulate_collective(
            config=LinkConfig(bit_error_rate=3e-4, max_replays=64),
            n_jobs=10,
            seed=3,
        )
        assert clean.mean_goodput == 1.0
        assert noisy.mean_goodput < clean.mean_goodput
