"""Topology-aware fabrics and collectives."""

import numpy as np
import pytest

from repro.cluster.node import NodeKind
from repro.cluster.topology import nvlink_topology_for
from repro.nvlink.fabric import LinkFabric
from repro.nvlink.link import LinkConfig


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestRingOrder:
    def test_all_to_all_has_ring(self):
        fabric = LinkFabric(nvlink_topology_for(NodeKind.A100_X4))
        order = fabric.ring_order()
        assert order is not None and len(order) == 4

    def test_nvswitch_eight_way_has_ring(self):
        fabric = LinkFabric(nvlink_topology_for(NodeKind.A100_X8))
        order = fabric.ring_order()
        assert order is not None and len(order) == 8

    def test_a40_pairs_cannot_ring(self):
        fabric = LinkFabric(nvlink_topology_for(NodeKind.A40_X4))
        assert fabric.ring_order() is None

    def test_ring_edges_exist(self):
        fabric = LinkFabric(nvlink_topology_for(NodeKind.A100_X4))
        order = fabric.ring_order()
        for a, b in zip(order, order[1:] + order[:1]):
            assert fabric.channel(a, b) is not None


class TestRingAllreduce:
    def test_a100_collective_stays_on_nvlink(self, rng):
        fabric = LinkFabric(
            nvlink_topology_for(NodeKind.A100_X4),
            LinkConfig(bit_error_rate=0.0),
        )
        result = fabric.ring_allreduce(rng)
        assert result.completed
        assert result.all_nvlink
        assert result.steps == 6  # 2*(4-1)

    def test_a40_collective_needs_pcie_fallback(self, rng):
        fabric = LinkFabric(
            nvlink_topology_for(NodeKind.A40_X4),
            LinkConfig(bit_error_rate=0.0),
        )
        result = fabric.ring_allreduce(rng)
        assert result.completed
        assert result.pcie_fallback_hops > 0  # cross-pair hops left NVLink

    def test_noisy_link_errors_absorbed(self, rng):
        fabric = LinkFabric(
            nvlink_topology_for(NodeKind.A100_X4),
            LinkConfig(bit_error_rate=2e-4, max_replays=64),
        )
        result = fabric.ring_allreduce(rng, chunks=16)
        assert result.completed
        assert result.crc_errors > 0

    def test_dead_link_aborts_collective(self, rng):
        fabric = LinkFabric(
            nvlink_topology_for(NodeKind.A100_X4),
            LinkConfig(bit_error_rate=0.3, max_replays=1),
        )
        result = fabric.ring_allreduce(rng)
        assert not result.completed
        assert result.fatal_link is not None
        # The failed edge really is part of the topology.
        assert fabric.channel(*result.fatal_link) is not None

    def test_two_gpu_minimum(self, rng):
        from repro.cluster.topology import NVLinkTopology

        lonely = NVLinkTopology(NodeKind.A40_X4, frozenset())
        with pytest.raises(ValueError):
            LinkFabric(lonely).ring_allreduce(rng)
