"""End-to-end calibration recovery.

The central scientific claim of the reproduction: the analysis pipeline,
seeing only rendered syslog text and the Slurm database, recovers the
statistics the fault substrate was calibrated to — which are the paper's
published numbers.  Tolerances reflect the shared dataset's small scale
(0.02 of the full window); exact full-scale comparisons live in
EXPERIMENTS.md / the benchmark harness.
"""

import pytest

from repro.faults.calibration import AMPERE_CALIBRATION
from repro.faults.xid import Xid
from tests.conftest import SCALE


class TestTable1Recovery:
    def test_counts_per_code(self, dataset, study):
        measured = study.error_statistics().counts()
        targets = AMPERE_CALIBRATION.scaled_counts(SCALE)
        for xid, target in targets.items():
            if target < 30:
                continue
            assert measured.get(int(xid), 0) == pytest.approx(target, rel=0.15), xid

    def test_exact_event_recovery_against_ground_truth(self, dataset, study):
        # The pipeline must recover the generated studied-event count
        # *exactly*: the renderer guarantees bursts coalesce back into
        # single errors and the injector guarantees event separation.
        truth = {
            xid: count
            for xid, count in dataset.trace.counts_by_xid().items()
            if xid not in (Xid.GENERAL_SW, Xid.RESET_CHANNEL)
        }
        measured = study.error_statistics().counts()
        for xid, count in truth.items():
            assert measured.get(int(xid), 0) == count, xid

    def test_overall_mtbe_near_67_node_hours(self, study):
        mtbe = study.error_statistics().overall_mtbe_node_hours()
        assert mtbe == pytest.approx(67.0, rel=0.12)

    def test_memory_30x_more_reliable(self, study):
        assert study.error_statistics().memory_vs_hardware_ratio() > 10

    def test_persistence_p50s(self, study):
        stats = study.error_statistics()
        mmu = stats.persistence_summary(int(Xid.MMU))
        assert mmu.p50 == pytest.approx(2.80, abs=0.4)
        unc = stats.persistence_summary(int(Xid.UNCONTAINED))
        assert unc.p50 == pytest.approx(75.22, rel=0.25)
        # The paradox: mean far above P50 for uncontained errors.
        assert unc.mean > 4 * unc.p50


class TestPropagationRecovery:
    def test_figure5_paths(self, study):
        paths = study.propagation().hardware_paths()
        assert paths["p_gsp_self_or_terminal"] == pytest.approx(0.99, abs=0.03)
        assert paths["p_gsp_isolated"] == pytest.approx(0.99, abs=0.03)

    def test_figure6_nvlink(self, study):
        paths = study.propagation().hardware_paths()
        involvement = study.propagation().nvlink_involvement()
        assert paths["p_nvlink_self"] == pytest.approx(0.66, abs=0.15)
        # ~15 NVLink incidents at this scale: involvement is very noisy, so
        # only the qualitative claim (most errors stay on one GPU's incident
        # cluster) is asserted; the quantitative check runs at bench scale.
        assert involvement.single_gpu_fraction > 0.5

    def test_uncontained_errors_have_no_chained_structure(self, study):
        graph = study.propagation().analyze()
        # Figure 7: uncontained errors appear without succeeding errors.
        assert graph.probability(Xid.UNCONTAINED, Xid.UNCONTAINED) < 0.12


class TestJobImpactRecovery:
    def test_success_rate(self, study):
        assert study.job_impact().success_rate() == pytest.approx(0.7468, abs=0.01)

    def test_mmu_failure_probability(self, study):
        rows = {r.xid: r for r in study.job_impact().table2()}
        assert rows[int(Xid.MMU)].failure_probability == pytest.approx(0.5867, abs=0.12)

    def test_gpu_failed_total_scales(self, study):
        total = study.job_impact().total_gpu_failed()
        assert total == pytest.approx(4_322 * SCALE, rel=0.4)

    def test_table3_shares(self, study):
        rows = {r.label: r for r in study.job_impact().table3()}
        assert rows["1"].share == pytest.approx(0.6986, abs=0.02)
        assert rows["2-4"].share == pytest.approx(0.2731, abs=0.02)

    def test_utilization_in_delta_range(self, dataset):
        # Section 2.4: A40 ~40%, A100 ~51% mean utilization.  The shared
        # dataset's short window under-counts jobs running past its edge,
        # so the lower bound is generous here (the full-scale comparison
        # lives in EXPERIMENTS.md).
        assert 0.20 < dataset.schedule.utilization() < 0.65


class TestAvailabilityRecovery:
    def test_availability_two_nines(self, study):
        report = study.availability().report()
        assert report.availability == pytest.approx(0.995, abs=0.004)

    def test_downtime_approximately_7_minutes_per_day(self, study):
        report = study.availability().report()
        assert report.downtime_minutes_per_day == pytest.approx(7.0, abs=3.0)


class TestCounterfactualRecovery:
    def test_3x_improvement_story(self, study):
        report = study.counterfactual().analyze()
        assert report.offender_improvement == pytest.approx(3.0, abs=1.1)
        assert report.improved_availability == pytest.approx(0.9987, abs=0.0015)
