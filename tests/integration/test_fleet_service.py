"""End-to-end fleet service: injector -> live emitter -> tailers ->
registry -> rules -> metrics endpoint.

One demo-cluster replay is shared by the whole module (the expensive
part); every test then asserts on the resulting service state.
"""

import urllib.request

import pytest

from repro.fleet import (
    Action,
    FleetHealthService,
    FleetServiceConfig,
    LiveLogEmitter,
    MemorySink,
)
from repro.fleet.demo import demo_counts, demo_trace

SEED = 11


@pytest.fixture(scope="module")
def live_session(tmp_path_factory):
    """Replay the demo trace into log files while the service follows."""
    logs = tmp_path_factory.mktemp("fleet") / "logs"
    logs.mkdir()
    trace = demo_trace(seed=SEED)
    sink = MemorySink()
    service = FleetHealthService(
        FleetServiceConfig(
            logs_dir=logs,
            queue_size=256,  # small bound: exercises backpressure for real
            alarm_after_seconds=600.0,
        ),
        sinks=[sink],
    )
    service.start()
    emitter = LiveLogEmitter.from_trace(trace, logs, seed=SEED)
    emitter.start()
    emitter.join(120.0)
    assert service.wait_idle(timeout=60.0), "service never went idle"
    scrape = urllib.request.urlopen(service.metrics_url, timeout=10).read().decode()
    summary = service.summary()
    service.stop()
    return {
        "trace": trace,
        "sink": sink,
        "summary": summary,
        "scrape": scrape,
        "emitter": emitter,
        "service": service,
    }


class TestLiveIngestion:
    def test_every_emitted_line_was_ingested(self, live_session):
        assert live_session["summary"]["records_ingested"] == (
            live_session["emitter"].lines_written
        )
        assert live_session["summary"]["records_ingested"] > 0

    def test_onsets_match_the_injected_ground_truth(self, live_session):
        """Each injected fault event becomes exactly one coalesced onset —
        the live pipeline neither drops nor double-counts despite the
        duplicate-line rendering and concurrent tailing."""
        assert live_session["summary"]["onsets_by_xid"] == demo_counts(
            live_session["trace"]
        )

    def test_queue_stayed_bounded(self, live_session):
        service = live_session["service"]
        assert service.tailer.queue.maxsize == 256
        assert service.tailer.queue_depth == 0  # fully drained


class TestOperatorAlerts:
    def test_xid79_fires_the_drain_node_alert(self, live_session):
        drains = live_session["sink"].of_action(Action.DRAIN_NODE)
        assert drains, "no drain-node alert for a fallen-off-the-bus GPU"
        assert all(a.xid == 79 for a in drains)
        assert all(a.severity == "critical" for a in drains)
        # One drain per affected node, not an alert storm.
        affected = {a.node_id for a in drains}
        assert len(drains) == len(affected)

    def test_every_default_rule_fired(self, live_session):
        by_rule = live_session["summary"]["alerts_by_rule"]
        assert set(by_rule) == {
            "xid79-fallen-off-bus",
            "xid119-gsp-repeat",
            "dbe-remap-chain",
            "uncontained-burst",
            "persistence-tail",
        }

    def test_burst_alert_names_the_offender(self, live_session):
        replacements = live_session["sink"].of_action(Action.REPLACE_GPU)
        assert replacements
        # The demo profile concentrates uncontained errors on 2 offenders.
        offenders = {(a.node_id, a.pci_bus) for a in replacements}
        assert len(offenders) <= 3


class TestMetricsEndpoint:
    def test_scrape_reflects_the_session(self, live_session):
        scrape = live_session["scrape"]
        summary = live_session["summary"]
        assert (
            f"repro_fleet_records_ingested_total {summary['records_ingested']}"
            in scrape
        )
        assert 'repro_fleet_error_onsets_total{abbrev="Fallen Off Bus",xid="79"}' in scrape
        assert (
            'repro_fleet_alerts_total{action="drain_node",'
            'rule="xid79-fallen-off-bus"}' in scrape
        )
        assert "repro_fleet_queue_depth 0" in scrape
        assert "repro_fleet_uptime_seconds" in scrape
