"""Command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_synthesize_then_study(self, tmp_path, capsys):
        out_dir = tmp_path / "data"
        assert main(["synthesize", str(out_dir), "--scale", "0.004", "--seed", "3"]) == 0
        captured = capsys.readouterr()
        assert "slurm.jsonl" in captured.out
        assert (out_dir / "slurm.jsonl").exists()
        assert any((out_dir / "logs").iterdir())

    def test_study_in_memory(self, capsys):
        assert main(["study", "--scale", "0.004", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Figure 5" in out
        assert "Section 5.5" in out

    def test_study_dataset_with_workers(self, tmp_path, capsys):
        out_dir = tmp_path / "data"
        main(["synthesize", str(out_dir), "--scale", "0.004", "--seed", "3"])
        capsys.readouterr()
        assert main(["study", "--dataset", str(out_dir), "--workers", "2",
                     "--scale", "0.004"]) == 0
        parallel = capsys.readouterr().out
        assert main(["study", "--dataset", str(out_dir), "--workers", "1",
                     "--scale", "0.004"]) == 0
        serial = capsys.readouterr().out
        assert "Table 1" in parallel
        assert parallel == serial  # worker count never changes the report

    def test_study_rejects_nonpositive_workers(self, capsys):
        assert main(["study", "--scale", "0.004", "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().out

    def test_overprovision(self, capsys):
        assert main(["overprovision", "--nodes", "200", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Overprovision" in out

    def test_figures(self, tmp_path, capsys):
        assert main(["figures", "--scale", "0.004", "--seed", "3",
                     "--output", str(tmp_path / "figs")]) == 0
        svgs = list((tmp_path / "figs").glob("*.svg"))
        assert len(svgs) >= 5

    def test_monitor(self, tmp_path, capsys):
        out_dir = tmp_path / "data"
        main(["synthesize", str(out_dir), "--scale", "0.004", "--seed", "3"])
        capsys.readouterr()
        assert main(["monitor", str(out_dir / "logs"), "--alarm-minutes", "10"]) == 0
        out = capsys.readouterr().out
        assert "stream complete" in out
        assert "ALARM" in out  # the offender GPU trips the watchdog

    def test_serve_simulate(self, tmp_path, capsys):
        logs = tmp_path / "logs"
        alerts = tmp_path / "alerts.jsonl"
        assert main([
            "serve", str(logs), "--simulate", "--seed", "11",
            "--alarm-minutes", "10", "--alerts-jsonl", str(alerts),
        ]) == 0
        out = capsys.readouterr().out
        assert "metrics: http://" in out
        assert "ALERT" in out
        assert "drain_node" in out  # the XID-79 rule fired
        assert "session summary:" in out
        assert "repro_fleet_records_ingested_total" in out
        assert alerts.exists() and alerts.read_text().strip()

    def test_serve_rejects_missing_directory(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "absent")]) == 2
        assert "not a directory" in capsys.readouterr().out

    def test_experiment_listing(self, capsys):
        assert main(["experiment"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "sec5.4" in out

    def test_experiment_run(self, capsys):
        assert main(["experiment", "fig5", "--scale", "0.004", "--seed", "3"]) == 0
        assert "GSP" in capsys.readouterr().out

    def test_simulate_list_scenarios(self, capsys):
        assert main(["simulate", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "a100-512" in out and "h100-256" in out
        assert "no-xid79" in out

    def test_simulate_sweep_table(self, capsys):
        assert main([
            "simulate", "--scenario", "a100-256", "--policy", "spare:2",
            "--replicas", "2", "--workers", "2", "--seed", "13",
            "--gpus", "32", "--useful-hours", "12",
        ]) == 0
        out = capsys.readouterr().out
        assert "completed fraction" in out
        assert "goodput" in out and "ettr_hours" in out

    def test_simulate_json_and_cache(self, tmp_path, capsys):
        import json

        args = [
            "simulate", "--scenario", "a100-256", "--policy", "ckpt",
            "--replicas", "2", "--seed", "13", "--gpus", "32",
            "--useful-hours", "12", "--cache-dir", str(tmp_path), "--json",
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["aggregate"]["replicas"] == 2
        assert first["n_from_cache"] == 0
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["n_from_cache"] == 2
        assert second["aggregate"] == first["aggregate"]

    def test_simulate_rejects_unknown_scenario(self, capsys):
        assert main(["simulate", "--scenario", "z9000"]) == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_simulate_rejects_bad_policy(self, capsys):
        assert main(["simulate", "--policy", "teleport"]) == 2
        assert "unknown policy" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestStructuredOutput:
    def test_experiment_json_is_schema_valid(self, capsys):
        import json

        from repro.results import ExperimentResult, validate_result_dict

        assert main(["experiment", "fig5", "--scale", "0.004", "--seed", "3",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_result_dict(payload) == []
        result = ExperimentResult.from_dict(payload)
        assert result.experiment_id == "fig5"
        assert result.manifest.seed == 3
        assert result.manifest.scale == 0.004

    def test_experiment_output_dir_writes_artifacts(self, tmp_path, capsys):
        import json

        assert main(["experiment", "table1", "--scale", "0.004", "--seed", "3",
                     "--output-dir", str(tmp_path)]) == 0
        directory = tmp_path / "table1"
        result = json.loads((directory / "result.json").read_text())
        manifest = json.loads((directory / "manifest.json").read_text())
        assert result["experiment_id"] == "table1"
        assert manifest["seed"] == 3
        assert "coalesce" in manifest["config_hashes"]
        assert (directory / "result.svg").read_text().startswith("<svg")

    def test_study_json_covers_the_sequence(self, capsys):
        import json

        assert main(["study", "--scale", "0.004", "--seed", "3",
                     "--format", "json"]) == 0
        payloads = json.loads(capsys.readouterr().out)
        identifiers = [p["experiment_id"] for p in payloads]
        assert identifiers[0] == "table1" and "fig9" in identifiers

    def test_simulate_output_dir_writes_manifest(self, tmp_path, capsys):
        import json

        assert main(["simulate", "--scenario", "a100-256", "--policy", "none",
                     "--replicas", "2", "--seed", "5",
                     "--output-dir", str(tmp_path)]) == 0
        (directory,) = [p for p in tmp_path.iterdir() if p.is_dir()]
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["seed"] == 5
        assert manifest["config_hashes"]["sweep"]


class TestVerify:
    def test_verify_passes_with_relaxed_bands(self, capsys):
        assert main(["verify", "table1", "fig9", "--scale", "0.02",
                     "--seed", "1234", "--tolerance-scale", "4"]) == 0
        out = capsys.readouterr().out
        assert "Paper-fidelity verification" in out
        assert "0 failed" in out

    def test_verify_fails_on_injected_miscalibration(self, capsys):
        # a near-zero band makes the (deterministic) small-scale drift from
        # the paper's exact values count as a miscalibration
        assert main(["verify", "table1", "--scale", "0.02", "--seed", "1234",
                     "--tolerance-scale", "1e-6"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_verify_rejects_unknown_ids(self, capsys):
        assert main(["verify", "nope", "--scale", "0.02"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().out
