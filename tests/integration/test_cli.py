"""Command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_synthesize_then_study(self, tmp_path, capsys):
        out_dir = tmp_path / "data"
        assert main(["synthesize", str(out_dir), "--scale", "0.004", "--seed", "3"]) == 0
        captured = capsys.readouterr()
        assert "slurm.jsonl" in captured.out
        assert (out_dir / "slurm.jsonl").exists()
        assert any((out_dir / "logs").iterdir())

    def test_study_in_memory(self, capsys):
        assert main(["study", "--scale", "0.004", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Figure 5" in out
        assert "Section 5.5" in out

    def test_overprovision(self, capsys):
        assert main(["overprovision", "--nodes", "200", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Overprovision" in out

    def test_figures(self, tmp_path, capsys):
        assert main(["figures", "--scale", "0.004", "--seed", "3",
                     "--output", str(tmp_path / "figs")]) == 0
        svgs = list((tmp_path / "figs").glob("*.svg"))
        assert len(svgs) >= 5

    def test_monitor(self, tmp_path, capsys):
        out_dir = tmp_path / "data"
        main(["synthesize", str(out_dir), "--scale", "0.004", "--seed", "3"])
        capsys.readouterr()
        assert main(["monitor", str(out_dir / "logs"), "--alarm-minutes", "10"]) == 0
        out = capsys.readouterr().out
        assert "stream complete" in out
        assert "ALARM" in out  # the offender GPU trips the watchdog

    def test_serve_simulate(self, tmp_path, capsys):
        logs = tmp_path / "logs"
        alerts = tmp_path / "alerts.jsonl"
        assert main([
            "serve", str(logs), "--simulate", "--seed", "11",
            "--alarm-minutes", "10", "--alerts-jsonl", str(alerts),
        ]) == 0
        out = capsys.readouterr().out
        assert "metrics: http://" in out
        assert "ALERT" in out
        assert "drain_node" in out  # the XID-79 rule fired
        assert "session summary:" in out
        assert "repro_fleet_records_ingested_total" in out
        assert alerts.exists() and alerts.read_text().strip()

    def test_serve_rejects_missing_directory(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "absent")]) == 2
        assert "not a directory" in capsys.readouterr().out

    def test_experiment_listing(self, capsys):
        assert main(["experiment"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "sec5.4" in out

    def test_experiment_run(self, capsys):
        assert main(["experiment", "fig5", "--scale", "0.004", "--seed", "3"]) == 0
        assert "GSP" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
