"""The experiment registry: every registered artifact runs end-to-end."""

import pytest

from repro.experiments import EXPERIMENTS, list_experiments, run_experiment


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        artifacts = {e.paper_artifact for e in EXPERIMENTS.values()}
        for expected in ("Table 1", "Table 2", "Table 3", "Figure 5",
                         "Figure 6", "Figure 7", "Figure 9",
                         "Section 5.4", "Section 5.5"):
            assert expected in artifacts

    def test_listing_sorted_and_complete(self):
        listed = list_experiments()
        assert len(listed) == len(EXPERIMENTS)
        identifiers = [e.identifier for e in listed]
        assert identifiers == sorted(identifiers)

    def test_unknown_experiment_rejected(self, study):
        with pytest.raises(KeyError, match="table1"):
            run_experiment("nope", study)


class TestRunners:
    @pytest.mark.parametrize("identifier", sorted(EXPERIMENTS))
    def test_every_experiment_runs(self, identifier, study):
        if identifier == "sec5.4":
            pytest.skip("the overprovision sweep is covered by its own bench")
        text = run_experiment(identifier, study, scale=0.02)
        assert EXPERIMENTS[identifier].paper_artifact.split()[0] in text or text

    def test_jobless_study_rejects_job_experiments(self):
        from repro.core import DeltaStudy

        bare = DeltaStudy([], window_hours=10.0, n_nodes=1)
        with pytest.raises(ValueError):
            run_experiment("table2", bare)

    def test_jobless_study_runs_hardware_experiments(self, dataset):
        from repro.core import DeltaStudy

        bare = DeltaStudy(
            dataset.log_lines(include_noise=False),
            window_hours=dataset.window_seconds / 3600.0,
            n_nodes=dataset.reference_node_count,
        )
        text = run_experiment("fig5", bare, scale=0.02)
        assert "GSP" in text
