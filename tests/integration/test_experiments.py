"""The experiment registry: every registered artifact runs end-to-end."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    list_experiments,
    run_experiment,
    verified_experiments,
)
from repro.faults.calibration import PAPER_EXPECTATIONS
from repro.results import ExperimentResult, validate_result_dict


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        artifacts = {e.paper_artifact for e in EXPERIMENTS.values()}
        for expected in ("Table 1", "Table 2", "Table 3", "Figure 5",
                         "Figure 6", "Figure 7", "Figure 9",
                         "Section 5.4", "Section 5.5"):
            assert expected in artifacts

    def test_listing_sorted_and_complete(self):
        listed = list_experiments()
        assert len(listed) == len(EXPERIMENTS)
        identifiers = [e.identifier for e in listed]
        assert identifiers == sorted(identifiers)

    def test_verified_subset_nonempty(self):
        verified = {e.identifier for e in verified_experiments()}
        assert "table1" in verified and "fig9" in verified
        # every expectation key belongs to a verified experiment
        for key in PAPER_EXPECTATIONS:
            assert any(key.startswith(v + ".") for v in verified), key

    def test_unknown_experiment_rejected(self, study):
        with pytest.raises(KeyError, match="table1"):
            run_experiment("nope", study)


class TestRunners:
    @pytest.mark.parametrize("identifier", sorted(EXPERIMENTS))
    def test_every_experiment_returns_wellformed_result(self, identifier, study):
        if identifier == "sec5.4":
            pytest.skip("the overprovision sweep is covered by its own bench")
        result = run_experiment(identifier, study, scale=0.02, seed=1234)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == identifier

        # provenance is fully populated
        manifest = result.manifest
        assert manifest is not None
        assert manifest.run_id
        assert manifest.seed == 1234
        assert manifest.scale == 0.02
        assert manifest.window_hours and manifest.window_hours > 0
        assert manifest.n_nodes and manifest.n_nodes > 0
        assert "coalesce" in manifest.config_hashes
        assert manifest.package_version

        # every paper expectation for this experiment maps to a metric
        names = {m.name for m in result.metrics}
        for key in PAPER_EXPECTATIONS:
            if key.startswith(identifier + "."):
                assert key[len(identifier) + 1:] in names, key

        # the JSON artifact is schema-valid and the rendering deterministic
        assert validate_result_dict(result.to_dict()) == []
        again = run_experiment(identifier, study, scale=0.02, seed=1234)
        assert again.render_text() == result.render_text()

    def test_rendered_text_names_the_artifact(self, study):
        text = run_experiment("fig5", study, scale=0.02).render_text()
        assert "Figure 5" in text

    def test_jobless_study_rejects_job_experiments(self):
        from repro.core import DeltaStudy

        bare = DeltaStudy([], window_hours=10.0, n_nodes=1)
        with pytest.raises(ValueError):
            run_experiment("table2", bare)

    def test_jobless_study_runs_hardware_experiments(self, dataset):
        from repro.core import DeltaStudy

        bare = DeltaStudy(
            dataset.log_lines(include_noise=False),
            window_hours=dataset.window_seconds / 3600.0,
            n_nodes=dataset.reference_node_count,
        )
        text = run_experiment("fig5", bare, scale=0.02).render_text()
        assert "GSP" in text

    def test_spatial_gpu_population_comes_from_the_dataset(self, study):
        # the study carries its inventory; the spatial analysis must use it
        assert study.n_gpus == 848
        result = run_experiment("sec4.2iii", study, scale=0.02)
        assert result.manifest.n_gpus == 848
