"""Golden byte-identity: the structured results render the exact report
text the repo produced before the results layer existed.

The goldens under ``tests/golden/`` were captured from the pre-refactor
renderers at the default CLI settings (scale 0.05, seed 7).  Each
experiment must reproduce its golden byte-for-byte — both when rendered
directly and when rendered after a JSON round-trip, which is what pins
the serialization to be lossless.
"""

import json
from pathlib import Path

import pytest

from repro.core import DeltaStudy
from repro.datasets import synthesize_delta
from repro.experiments import EXPERIMENTS, run_experiment
from repro.results import ExperimentResult, validate_result_dict

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

#: The settings the goldens were captured at.
GOLDEN_SCALE = 0.05
GOLDEN_SEED = 7


@pytest.fixture(scope="module")
def golden_study():
    dataset = synthesize_delta(scale=GOLDEN_SCALE, seed=GOLDEN_SEED)
    built = DeltaStudy.from_dataset(dataset)
    built.errors  # force extraction + coalescing once
    return built


def _golden_path(identifier: str) -> Path:
    return GOLDEN_DIR / f"{identifier.replace('.', '_')}.txt"


def test_every_experiment_has_a_golden():
    missing = [i for i in EXPERIMENTS if not _golden_path(i).exists()]
    assert not missing, f"missing golden files: {missing}"


@pytest.mark.parametrize("identifier", sorted(EXPERIMENTS))
def test_text_rendering_matches_golden(identifier, golden_study):
    golden = _golden_path(identifier).read_text(encoding="utf-8")
    result = run_experiment(
        identifier, golden_study, scale=GOLDEN_SCALE, seed=GOLDEN_SEED
    )
    assert result.render_text() + "\n" == golden


@pytest.mark.parametrize("identifier", sorted(EXPERIMENTS))
def test_json_round_trip_preserves_rendering(identifier, golden_study):
    result = run_experiment(
        identifier, golden_study, scale=GOLDEN_SCALE, seed=GOLDEN_SEED
    )
    payload = result.render_json()
    assert validate_result_dict(json.loads(payload)) == []
    back = ExperimentResult.from_json(payload)
    assert back.render_text() == result.render_text()
    golden = _golden_path(identifier).read_text(encoding="utf-8")
    assert back.render_text() + "\n" == golden
