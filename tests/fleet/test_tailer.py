"""Live-log tailers: incremental polling, backpressure, merged streams."""

import os
import threading
import time

import pytest

from repro.fleet.tailer import DirectoryTailer, LogTailer, iter_directory_records
from repro.util.timeutil import format_timestamp


def _line(t, node="gpua001", pci="0000:07:00", xid=95, msg="Uncontained ECC"):
    return (
        f"{format_timestamp(float(t))} {node} kernel: NVRM: Xid "
        f"(PCI:{pci}): {xid}, pid=1234, {msg}"
    )


class TestLogTailer:
    def test_polls_only_new_complete_lines(self, tmp_path):
        path = tmp_path / "node.log"
        path.write_text(_line(0.0) + "\n")
        tailer = LogTailer(path)
        assert len(tailer.poll_records()) == 1
        assert tailer.poll_records() == []  # nothing new

        with open(path, "a") as handle:
            handle.write(_line(5.0) + "\n" + _line(10.0)[:30])  # partial tail
        records = tailer.poll_records()
        assert [r.time for r in records] == [5.0]

        with open(path, "a") as handle:  # writer completes the line
            handle.write(_line(10.0)[30:] + "\n")
        assert [r.time for r in tailer.poll_records()] == [10.0]

    def test_non_xid_lines_are_skipped(self, tmp_path):
        path = tmp_path / "node.log"
        path.write_text("2022-01-01T00:00:00.000 gpua001 kernel: boring\n")
        tailer = LogTailer(path)
        assert tailer.poll_records() == []
        assert tailer.stats.lines_seen == 1

    def test_truncation_resets_like_tail_dash_f(self, tmp_path):
        path = tmp_path / "node.log"
        path.write_text(_line(0.0) + "\n" + _line(1.0) + "\n")
        tailer = LogTailer(path)
        assert len(tailer.poll_records()) == 2
        path.write_text(_line(2.0) + "\n")  # rotated: smaller file
        assert [r.time for r in tailer.poll_records()] == [2.0]

    def test_rotation_to_larger_replacement_reopens(self, tmp_path):
        path = tmp_path / "node.log"
        path.write_text(_line(0.0) + "\n")
        tailer = LogTailer(path)
        assert len(tailer.poll_records()) == 1
        # Rotate: the path now names a brand-new file that is already
        # *larger* than the old read offset.  A size-only heuristic would
        # resume at the stale offset and stream garbage from the middle
        # of the replacement; the inode check must reopen from the top.
        os.replace(path, tmp_path / "node.log.1")
        replacement = tmp_path / "node.log.new"
        replacement.write_text(
            "".join(_line(t, xid=31) + "\n" for t in (10.0, 11.0, 12.0))
        )
        os.replace(replacement, path)
        records = tailer.poll_records()
        assert [r.time for r in records] == [10.0, 11.0, 12.0]
        assert all(r.xid == 31 for r in records)
        # And the tailer keeps following the new file afterwards.
        with open(path, "a") as handle:
            handle.write(_line(13.0, xid=31) + "\n")
        assert [r.time for r in tailer.poll_records()] == [13.0]

    def test_from_start_false_skips_existing_content(self, tmp_path):
        path = tmp_path / "node.log"
        path.write_text(_line(0.0) + "\n")
        tailer = LogTailer(path, from_start=False)
        assert tailer.poll_records() == []
        with open(path, "a") as handle:
            handle.write(_line(1.0) + "\n")
        assert [r.time for r in tailer.poll_records()] == [1.0]

    def test_missing_file_yields_nothing(self, tmp_path):
        tailer = LogTailer(tmp_path / "absent.log")
        assert tailer.poll_lines() == []


class TestIterDirectoryRecords:
    def test_streams_all_records_in_per_file_order(self, tmp_path):
        (tmp_path / "b.log").write_text(
            _line(1.0, node="b") + "\n" + _line(3.0, node="b") + "\n"
        )
        (tmp_path / "a.log").write_text(_line(2.0, node="a") + "\n")
        records = list(iter_directory_records(tmp_path))
        # Files visited in sorted order; per-file order preserved.
        assert [(r.node_id, r.time) for r in records] == [
            ("a", 2.0), ("b", 1.0), ("b", 3.0),
        ]

    def test_ignores_non_log_files(self, tmp_path):
        (tmp_path / "notes.txt").write_text(_line(0.0) + "\n")
        assert list(iter_directory_records(tmp_path)) == []


class TestDirectoryTailer:
    def test_requires_start_before_consuming(self, tmp_path):
        tailer = DirectoryTailer(tmp_path)
        with pytest.raises(RuntimeError):
            next(tailer.records())

    def test_collects_existing_and_appended_lines(self, tmp_path):
        (tmp_path / "gpua001.log").write_text(
            "".join(_line(t, node="gpua001") + "\n" for t in (0.0, 5.0))
        )
        (tmp_path / "gpub001.log").write_text(_line(2.0, node="gpub001") + "\n")
        tailer = DirectoryTailer(tmp_path, poll_interval=0.01).start()

        def _append_later():
            time.sleep(0.1)
            with open(tmp_path / "gpua001.log", "a") as handle:
                handle.write(_line(9.0, node="gpua001") + "\n")
            time.sleep(0.1)
            tailer.stop()

        threading.Thread(target=_append_later, daemon=True).start()
        records = list(tailer.records())
        tailer.join(5.0)
        assert len(records) == 4
        # Per-GPU (= per-file) time order survives the merge.
        gpua = [r.time for r in records if r.node_id == "gpua001"]
        assert gpua == sorted(gpua) == [0.0, 5.0, 9.0]
        assert tailer.stats().records_parsed == 4

    def test_new_files_are_discovered_on_the_fly(self, tmp_path):
        tailer = DirectoryTailer(tmp_path, poll_interval=0.01).start()

        def _create_later():
            time.sleep(0.05)
            (tmp_path / "late.log").write_text(_line(1.0, node="late") + "\n")
            time.sleep(0.1)
            tailer.stop()

        threading.Thread(target=_create_later, daemon=True).start()
        records = list(tailer.records())
        assert [r.node_id for r in records] == ["late"]

    def test_bounded_queue_backpressure_loses_nothing(self, tmp_path):
        n = 500
        (tmp_path / "gpua001.log").write_text(
            "".join(_line(float(t)) + "\n" for t in range(n))
        )
        # Tiny queue: workers must block on put while the consumer drains.
        tailer = DirectoryTailer(tmp_path, queue_size=8, poll_interval=0.01)
        tailer.start()
        time.sleep(0.05)
        assert tailer.queue_depth <= 8  # the memory bound, mid-flight
        tailer.stop()
        records = list(tailer.records())
        assert len(records) == n
        assert [r.time for r in records] == [float(t) for t in range(n)]

    def test_invalid_config_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DirectoryTailer(tmp_path, queue_size=0)
        with pytest.raises(ValueError):
            DirectoryTailer(tmp_path, workers=0)
