"""Sharded per-GPU health registry."""

import threading

import pytest

from repro.core.parsing import RawXidRecord
from repro.fleet.registry import HealthRegistry, default_risk_scorer


def _record(t, node="gpua001", pci="0000:07:00", xid=95, msg="m"):
    return RawXidRecord(
        time=float(t), node_id=node, pci_bus=pci, xid=xid, message=msg
    )


class TestOnsetDetection:
    def test_duplicates_within_window_are_one_onset(self):
        registry = HealthRegistry(window_seconds=5.0)
        first = registry.ingest(_record(0.0))
        dup = registry.ingest(_record(3.0))
        assert first.onset and not dup.onset
        health = registry.gpu("gpua001", "0000:07:00")
        assert health.onsets == {95: 1}
        assert health.raw_lines == 2

    def test_gap_beyond_window_starts_a_new_onset(self):
        registry = HealthRegistry(window_seconds=5.0)
        registry.ingest(_record(0.0))
        again = registry.ingest(_record(100.0))
        assert again.onset
        assert registry.gpu("gpua001", "0000:07:00").onsets == {95: 2}
        assert registry.onset_counts() == {95: 2}

    def test_gpus_are_independent(self):
        registry = HealthRegistry()
        registry.ingest(_record(0.0, pci="0000:07:00"))
        registry.ingest(_record(1.0, pci="0000:46:00"))
        assert len(registry.snapshot()) == 2
        assert registry.open_runs() == 2
        assert registry.total_raw_lines() == 2

    def test_time_regression_restarts_instead_of_crashing(self):
        """A feed that jumps backward past the coalescing window (clock
        reset, or a replayed feed restarting behind warm-started store
        history) must keep ingesting — the live thread must never die on
        one bad timestamp."""
        registry = HealthRegistry(window_seconds=5.0, rate_window_seconds=3600.0)
        registry.ingest(_record(100_000.0))
        result = registry.ingest(_record(10.0))  # far behind the open run
        assert result.onset  # a fresh run on the new timeline
        assert len(result.closed) == 1  # the stale run was closed
        health = registry.gpu("gpua001", "0000:07:00")
        assert health.onsets == {95: 2}
        # Rolling-rate state follows the new clock: the new onset is live.
        assert health.last_seen == 10.0
        assert health.error_rate_per_hour(3600.0) == pytest.approx(1.0)

    def test_closed_runs_surface_then_are_dropped(self):
        registry = HealthRegistry(window_seconds=5.0)
        registry.ingest(_record(0.0))
        result = registry.ingest(_record(100.0))  # closes the first run
        assert len(result.closed) == 1
        assert result.closed[0].persistence == 0.0
        # Live memory holds only open runs, never the closed history.
        assert registry.open_runs() == 1


class TestHealthMetrics:
    def test_error_rate_uses_rolling_window(self):
        registry = HealthRegistry(window_seconds=1.0, rate_window_seconds=3600.0)
        for t in (0.0, 100.0, 200.0, 7200.0):
            registry.ingest(_record(t))
        health = registry.gpu("gpua001", "0000:07:00")
        # Only the t=7200 onset is inside the last hour.
        assert health.error_rate_per_hour(3600.0) == pytest.approx(1.0)
        assert health.total_onsets == 4

    def test_mtbe_hours(self):
        registry = HealthRegistry(window_seconds=1.0)
        registry.ingest(_record(0.0))
        assert registry.gpu("gpua001", "0000:07:00").mtbe_hours() == float("inf")
        registry.ingest(_record(7200.0))
        assert registry.gpu("gpua001", "0000:07:00").mtbe_hours() == pytest.approx(2.0)

    def test_persistence_alarm_propagates_through_ingest(self):
        registry = HealthRegistry(window_seconds=5.0, alarm_after_seconds=8.0)
        alarms = [
            registry.ingest(_record(t)).alarm for t in (0.0, 4.0, 8.0, 12.0)
        ]
        fired = [a for a in alarms if a is not None]
        assert len(fired) == 1
        assert fired[0].open_persistence == pytest.approx(8.0)
        assert registry.persistence_alarms() == 1


class TestRiskScoring:
    def test_default_score_grows_with_span_and_repeats(self):
        registry = HealthRegistry(window_seconds=100.0)
        registry.ingest(_record(0.0))
        early = registry.gpu("gpua001", "0000:07:00").risk_score
        registry.ingest(_record(90.0))
        late = registry.gpu("gpua001", "0000:07:00").risk_score
        assert 0.0 < early < late < 1.0

    def test_custom_scorer_is_used(self):
        calls = []

        def scorer(health, run):
            calls.append((health.gpu_key, run.xid))
            return 0.5

        registry = HealthRegistry(risk_scorer=scorer)
        registry.ingest(_record(0.0))
        assert calls == [(("gpua001", "0000:07:00"), 95)]
        assert registry.gpu("gpua001", "0000:07:00").risk_score == 0.5

    def test_default_scorer_is_bounded(self):
        health = HealthRegistry().ingest(_record(0.0)).health
        from repro.fleet.registry import OpenRunView

        run = OpenRunView(
            xid=95, start=0.0, latest=1e9, n_raw=10**6,
            early_lines=100, early_span=300.0,
        )
        assert 0.0 < default_risk_scorer(health, run) <= 0.999


class TestConcurrency:
    def test_parallel_ingest_from_many_threads(self):
        """Per-GPU streams from different threads must not corrupt state."""
        registry = HealthRegistry(n_shards=4, window_seconds=0.5)
        n_per_gpu = 200

        def _ingest(node, pci):
            for t in range(n_per_gpu):
                registry.ingest(_record(float(t * 2), node=node, pci=pci))

        threads = [
            threading.Thread(target=_ingest, args=(f"gpu{i:03d}", "0000:07:00"))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(registry.snapshot()) == 8
        # Gap 2s > window 0.5s: every record is its own onset.
        assert sum(registry.onset_counts().values()) == 8 * n_per_gpu
        assert registry.total_raw_lines() == 8 * n_per_gpu

    def test_flush_closes_everything(self):
        registry = HealthRegistry()
        registry.ingest(_record(0.0))
        registry.ingest(_record(1.0, pci="0000:46:00"))
        closed = registry.flush()
        assert len(closed) == 2
        assert registry.open_runs() == 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            HealthRegistry(n_shards=0)
        with pytest.raises(ValueError):
            HealthRegistry(rate_window_seconds=0.0)
