"""Alert rule engine: thresholds, precursors, cooldowns, sinks."""

import json

import pytest

from repro.core.parsing import RawXidRecord
from repro.core.streaming import PersistenceAlarm
from repro.fleet.rules import (
    Action,
    AlertRule,
    JsonLinesSink,
    MemorySink,
    RuleEngine,
    Scope,
    default_rules,
)


def _record(t, node="gpua001", pci="0000:07:00", xid=119, msg="m"):
    return RawXidRecord(
        time=float(t), node_id=node, pci_bus=pci, xid=xid, message=msg
    )


def _engine(*rules):
    sink = MemorySink()
    return RuleEngine(rules, sinks=[sink]), sink


class TestThresholdRules:
    def test_fires_at_min_count_within_window(self):
        rule = AlertRule(
            name="r", description="", action=Action.RESET_GPU,
            xids=(119,), min_count=3, window_seconds=100.0,
        )
        engine, sink = _engine(rule)
        for t in (0.0, 40.0):
            assert engine.observe_onset(_record(t)) == []
        fired = engine.observe_onset(_record(80.0))
        assert len(fired) == 1
        assert fired[0].action is Action.RESET_GPU
        assert fired[0].details["window_count"] == 3
        assert sink.of_action(Action.RESET_GPU) == fired

    def test_window_expiry_forgets_old_onsets(self):
        rule = AlertRule(
            name="r", description="", action=Action.RESET_GPU,
            xids=(119,), min_count=2, window_seconds=10.0,
        )
        engine, _ = _engine(rule)
        engine.observe_onset(_record(0.0))
        # 100s later: the first onset has left the window.
        assert engine.observe_onset(_record(100.0)) == []
        assert engine.observe_onset(_record(105.0)) != []

    def test_cooldown_suppresses_alert_storms(self):
        rule = AlertRule(
            name="r", description="", action=Action.REPLACE_GPU,
            xids=(95,), min_count=1, window_seconds=60.0,
            cooldown_seconds=600.0,
        )
        engine, sink = _engine(rule)
        for t in (0.0, 10.0, 20.0):
            engine.observe_onset(_record(t, xid=95))
        assert len(sink.alerts) == 1  # storm collapsed to one alert
        engine.observe_onset(_record(700.0, xid=95))  # cooldown elapsed
        assert len(sink.alerts) == 2

    def test_gpu_scope_isolates_parts_node_scope_aggregates(self):
        per_gpu = AlertRule(
            name="g", description="", action=Action.RESET_GPU,
            xids=(119,), min_count=2, window_seconds=100.0, scope=Scope.GPU,
        )
        per_node = AlertRule(
            name="n", description="", action=Action.DRAIN_NODE,
            xids=(119,), min_count=2, window_seconds=100.0, scope=Scope.NODE,
        )
        engine, sink = _engine(per_gpu, per_node)
        engine.observe_onset(_record(0.0, pci="0000:07:00"))
        engine.observe_onset(_record(1.0, pci="0000:46:00"))
        # Two different GPUs: only the node-scoped rule saw both.
        assert [a.rule for a in sink.alerts] == ["n"]


class TestPrecursorRules:
    def test_fires_only_after_precursor_on_same_gpu(self):
        rule = AlertRule(
            name="chain", description="", action=Action.RETIRE_PAGE_AUDIT,
            xids=(63,), after_xid=48, window_seconds=100.0,
        )
        engine, sink = _engine(rule)
        assert engine.observe_onset(_record(0.0, xid=63)) == []  # no DBE yet
        engine.observe_onset(_record(10.0, xid=48))
        engine.observe_onset(_record(11.0, xid=63, pci="0000:46:00"))  # other GPU
        assert sink.alerts == []
        fired = engine.observe_onset(_record(12.0, xid=63))
        assert len(fired) == 1
        assert "following XID 48" in fired[0].summary

    def test_stale_precursor_does_not_count(self):
        rule = AlertRule(
            name="chain", description="", action=Action.RETIRE_PAGE_AUDIT,
            xids=(63,), after_xid=48, window_seconds=50.0,
        )
        engine, sink = _engine(rule)
        engine.observe_onset(_record(0.0, xid=48))
        assert engine.observe_onset(_record(500.0, xid=63)) == []

    def test_code_is_not_its_own_precursor(self):
        rule = AlertRule(
            name="self", description="", action=Action.RESET_GPU,
            xids=(119,), after_xid=119, window_seconds=100.0,
        )
        engine, _ = _engine(rule)
        assert engine.observe_onset(_record(0.0, xid=119)) == []
        assert engine.observe_onset(_record(1.0, xid=119)) != []


class TestAlarmRules:
    def _alarm(self, t=0.0, open_s=700.0, xid=95):
        return PersistenceAlarm(
            node_id="gpua001", pci_bus="0000:07:00", xid=xid,
            start_time=t, open_persistence=open_s, n_raw=9,
        )

    def test_persistence_alarm_fires_rule(self):
        rule = AlertRule(
            name="tail", description="", action=Action.PAGE_SRE, on_alarm=True,
        )
        engine, sink = _engine(rule)
        fired = engine.observe_alarm(self._alarm())
        assert len(fired) == 1
        assert fired[0].details["open_persistence"] == 700.0
        assert sink.alerts == fired

    def test_min_open_seconds_gate(self):
        rule = AlertRule(
            name="tail", description="", action=Action.PAGE_SRE,
            on_alarm=True, min_open_seconds=1_000.0,
        )
        engine, _ = _engine(rule)
        assert engine.observe_alarm(self._alarm(open_s=700.0)) == []
        assert engine.observe_alarm(self._alarm(open_s=2_000.0)) != []

    def test_alarm_rule_can_filter_by_xid(self):
        rule = AlertRule(
            name="tail95", description="", action=Action.PAGE_SRE,
            on_alarm=True, xids=(95,),
        )
        engine, _ = _engine(rule)
        assert engine.observe_alarm(self._alarm(xid=119)) == []
        assert engine.observe_alarm(self._alarm(xid=95)) != []


class TestSinksAndCatalog:
    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "alerts" / "out.jsonl"
        sink = JsonLinesSink(path)
        rule = AlertRule(
            name="r", description="", action=Action.DRAIN_NODE,
            severity="critical", xids=(79,), window_seconds=60.0,
        )
        engine = RuleEngine([rule], sinks=[sink])
        engine.observe_onset(_record(0.0, xid=79))
        sink.close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0]["rule"] == "r"
        assert rows[0]["action"] == "drain_node"
        assert rows[0]["xid"] == 79

    def test_fired_counts_accumulate(self):
        rule = AlertRule(
            name="r", description="", action=Action.DRAIN_NODE,
            xids=(79,), window_seconds=60.0, cooldown_seconds=1.0,
        )
        engine, _ = _engine(rule)
        engine.observe_onset(_record(0.0, xid=79))
        engine.observe_onset(_record(100.0, xid=79))
        assert engine.fired_counts["r"] == 2
        assert engine.total_fired() == 2

    def test_default_catalog_covers_the_papers_guidance(self):
        rules = {r.name: r for r in default_rules()}
        assert rules["xid79-fallen-off-bus"].action is Action.DRAIN_NODE
        assert rules["xid79-fallen-off-bus"].scope is Scope.NODE
        assert rules["xid119-gsp-repeat"].action is Action.RESET_GPU
        assert rules["xid119-gsp-repeat"].min_count == 3
        assert rules["dbe-remap-chain"].after_xid == 48
        assert set(rules["dbe-remap-chain"].xids) == {63, 64}
        assert rules["uncontained-burst"].action is Action.REPLACE_GPU
        assert rules["persistence-tail"].on_alarm

    def test_invalid_rules_rejected(self):
        with pytest.raises(ValueError):
            AlertRule(name="r", description="", action=Action.PAGE_SRE)  # no xids
        with pytest.raises(ValueError):
            AlertRule(
                name="r", description="", action=Action.PAGE_SRE,
                xids=(1,), min_count=0,
            )
        with pytest.raises(ValueError):  # duplicate names
            rule = AlertRule(
                name="r", description="", action=Action.PAGE_SRE, xids=(1,)
            )
            RuleEngine([rule, rule])


class TestEventTimeContract:
    """Replay-grade guarantees: pure event time, regression-safe state."""

    def test_accelerated_delivery_changes_nothing(self):
        # The engine never reads the wall clock, so delivering a
        # 100x-compressed trace (same event times, no wall delay between
        # observes) fires exactly the same alerts.
        rule = AlertRule(
            name="r", description="", action=Action.RESET_GPU,
            xids=(119,), min_count=3, window_seconds=3_600.0,
            cooldown_seconds=600.0,
        )
        onsets = [0.0, 100.0, 200.0, 5_000.0, 5_100.0, 5_200.0]

        def run():
            engine, sink = _engine(rule)
            for t in onsets:
                engine.observe_onset(_record(t))
            return [(a.time, a.rule) for a in sink.alerts]

        assert run() == run() == [(200.0, "r"), (5_200.0, "r")]

    def test_timeline_regression_resets_cooldown(self):
        # A feed restart (re-run emitter, replay seeked back) jumps event
        # time far backward; carrying the old cooldown across would
        # silently suppress the whole new pass.
        rule = AlertRule(
            name="r", description="", action=Action.DRAIN_NODE,
            xids=(79,), window_seconds=60.0, cooldown_seconds=3_600.0,
        )
        engine, sink = _engine(rule)
        engine.observe_onset(_record(100_000.0, xid=79))
        engine.observe_onset(_record(10.0, xid=79))  # new timeline
        assert [a.time for a in sink.alerts] == [100_000.0, 10.0]

    def test_small_jitter_does_not_reset(self):
        # Backward jitter within the rule's memory horizon is ordinary
        # arrival-order noise, not a restart: cooldown still applies.
        rule = AlertRule(
            name="r", description="", action=Action.DRAIN_NODE,
            xids=(79,), window_seconds=60.0, cooldown_seconds=3_600.0,
        )
        engine, sink = _engine(rule)
        engine.observe_onset(_record(10_000.0, xid=79))
        engine.observe_onset(_record(9_990.0, xid=79))  # within cooldown
        assert [a.time for a in sink.alerts] == [10_000.0]

    def test_stale_precursor_from_old_timeline_ignored(self):
        # A precursor recorded before a regression lies in the new
        # timeline's *future*; it must not license a chain alert.
        rule = AlertRule(
            name="chain", description="", action=Action.RETIRE_PAGE_AUDIT,
            xids=(63,), after_xid=48, window_seconds=3_600.0,
        )
        engine, sink = _engine(rule)
        engine.observe_onset(_record(100_000.0, xid=48))
        engine.observe_onset(_record(50.0, xid=63))  # regressed timeline
        assert sink.alerts == []
        engine.observe_onset(_record(60.0, xid=48))
        engine.observe_onset(_record(70.0, xid=63))
        assert [a.time for a in sink.alerts] == [70.0]

    def test_alarm_rule_regression_resets_too(self):
        rule = AlertRule(
            name="tail", description="", action=Action.PAGE_SRE,
            on_alarm=True, cooldown_seconds=3_600.0,
        )
        engine, sink = _engine(rule)

        def alarm(start):
            return PersistenceAlarm(
                node_id="gpua001", pci_bus="0000:07:00", xid=95,
                start_time=start, open_persistence=10.0, n_raw=5,
            )

        engine.observe_alarm(alarm(100_000.0))
        engine.observe_alarm(alarm(20.0))  # restarted feed
        assert len(sink.alerts) == 2
