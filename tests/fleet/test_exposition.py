"""Prometheus text-format rendering and the stdlib HTTP endpoint."""

import urllib.error
import urllib.request

import pytest

from repro.core.parsing import RawXidRecord
from repro.fleet.exposition import MetricsServer, render_prometheus
from repro.fleet.registry import HealthRegistry
from repro.fleet.rules import Action, AlertRule, MemorySink, RuleEngine


def _record(t, node="gpua001", pci="0000:07:00", xid=95, msg="m"):
    return RawXidRecord(
        time=float(t), node_id=node, pci_bus=pci, xid=xid, message=msg
    )


def _populated_registry():
    registry = HealthRegistry(window_seconds=5.0)
    registry.ingest(_record(0.0))
    registry.ingest(_record(100.0))
    registry.ingest(_record(50.0, pci="0000:46:00", xid=119))
    return registry


class TestRenderPrometheus:
    def test_core_series_present(self):
        text = render_prometheus(_populated_registry())
        assert "# TYPE repro_fleet_tracked_gpus gauge" in text
        assert "repro_fleet_tracked_gpus 2" in text
        assert "repro_fleet_records_ingested_total 3" in text
        assert 'repro_fleet_error_onsets_total{abbrev="Uncontained ECC",xid="95"} 2' in text
        assert 'xid="119"' in text
        assert "repro_fleet_open_runs 2" in text
        assert text.endswith("\n")

    def test_engine_and_extra_gauges(self):
        rule = AlertRule(
            name="r", description="", action=Action.DRAIN_NODE,
            xids=(95,), window_seconds=60.0,
        )
        engine = RuleEngine([rule], sinks=[MemorySink()])
        engine.observe_onset(_record(0.0))
        text = render_prometheus(
            _populated_registry(), engine, extra_gauges={"repro_fleet_uptime_seconds": 1.5}
        )
        assert 'repro_fleet_alerts_total{action="drain_node",rule="r"} 1' in text
        assert "repro_fleet_uptime_seconds 1.5" in text

    def test_risk_and_rate_series_are_labelled_per_gpu(self):
        text = render_prometheus(_populated_registry())
        assert 'repro_fleet_gpu_risk_score{node="gpua001",pci_bus="0000:07:00"}' in text
        assert 'repro_fleet_gpu_error_rate_per_hour{node="gpua001"' in text

    def test_label_values_are_escaped(self):
        registry = HealthRegistry()
        registry.ingest(_record(0.0, node='we"ird\\node'))
        text = render_prometheus(registry)
        assert 'node="we\\"ird\\\\node"' in text


class TestMetricsServer:
    @pytest.fixture()
    def server(self):
        registry = _populated_registry()
        server = MetricsServer(lambda: render_prometheus(registry))
        server.start()
        yield server
        server.stop()

    def test_scrape_and_health(self, server):
        with urllib.request.urlopen(server.url, timeout=5) as response:
            assert response.status == 200
            assert "text/plain" in response.headers["Content-Type"]
            body = response.read().decode()
        assert "repro_fleet_tracked_gpus 2" in body

        health_url = server.url.replace("/metrics", "/healthz")
        with urllib.request.urlopen(health_url, timeout=5) as response:
            assert response.read() == b"ok\n"

    def test_unknown_path_is_404(self, server):
        bad = server.url.replace("/metrics", "/nope")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(bad, timeout=5)
        assert err.value.code == 404

    def test_provider_failure_becomes_500(self):
        def _boom():
            raise RuntimeError("scrape exploded")

        server = MetricsServer(_boom)
        server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url, timeout=5)
            assert err.value.code == 500
        finally:
            server.stop()
