"""FleetHealthService wiring: injectable clock, sink lifecycle, staleness."""

import json

from repro.fleet import JsonLinesSink
from repro.fleet.registry import HealthRegistry
from repro.fleet.service import FleetHealthService, FleetServiceConfig
from repro.replay import VirtualClock

from tests.fleet.test_rules import _record


def _service(tmp_path, *, sinks=(), clock=None, sleep=None):
    logs = tmp_path / "logs"
    logs.mkdir(exist_ok=True)
    kwargs = {}
    if clock is not None:
        kwargs["clock"] = clock
    if sleep is not None:
        kwargs["sleep"] = sleep
    return FleetHealthService(
        FleetServiceConfig(logs_dir=logs, metrics_port=None),
        sinks=sinks,
        **kwargs,
    )


class TestSinkLifecycle:
    def test_stop_closes_file_backed_sinks(self, tmp_path):
        sink = JsonLinesSink(tmp_path / "alerts.jsonl")
        service = _service(tmp_path, sinks=(sink,))
        service.start()
        service.stop(timeout=10.0)
        assert sink._handle.closed

    def test_alerts_written_before_close_survive(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = JsonLinesSink(path)
        service = _service(tmp_path, sinks=(sink,))
        service.start()
        service.engine.observe_onset(_record(0.0, xid=119))
        service.engine.observe_onset(_record(1.0, xid=119))
        service.engine.observe_onset(_record(2.0, xid=119))
        service.stop(timeout=10.0)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows and rows[0]["rule"] == "xid119-gsp-repeat"

    def test_memory_sinks_pass_through_unharmed(self, tmp_path):
        from repro.fleet import MemorySink

        sink = MemorySink()  # no close(): stop() must not choke on it
        service = _service(tmp_path, sinks=(sink,))
        service.start()
        service.stop(timeout=10.0)


class TestClockInjection:
    def test_uptime_reads_the_injected_clock(self, tmp_path):
        clock = VirtualClock(start=50.0)
        service = _service(tmp_path, clock=clock.monotonic, sleep=clock.sleep)
        service.start()
        try:
            clock.advance(123.0)
            metrics = service.render_metrics()
            line = next(
                l for l in metrics.splitlines()
                if l.startswith("repro_fleet_uptime_seconds")
            )
            assert float(line.split()[-1]) == 123.0
        finally:
            service.stop(timeout=10.0)

    def test_wait_for_terminates_on_virtual_time(self, tmp_path):
        clock = VirtualClock()
        service = _service(tmp_path, clock=clock.monotonic, sleep=clock.sleep)
        # Never-true predicate: virtual sleep advances the deadline past
        # instantly instead of blocking the suite for real seconds.
        assert service.wait_for(lambda s: False, timeout=500.0) is False
        assert clock.monotonic() >= 500.0


class TestIngestStaleness:
    def test_age_none_until_first_record(self):
        clock = VirtualClock()
        registry = HealthRegistry(clock=clock.monotonic)
        assert registry.ingest_age_seconds() is None

    def test_age_tracks_injected_clock(self):
        clock = VirtualClock()
        registry = HealthRegistry(clock=clock.monotonic)
        registry.ingest(_record(0.0, xid=31))
        assert registry.ingest_age_seconds() == 0.0
        clock.advance(42.0)
        assert registry.ingest_age_seconds() == 42.0
        registry.ingest(_record(1.0, xid=31))
        assert registry.ingest_age_seconds() == 0.0

    def test_staleness_gauge_exposed(self, tmp_path):
        clock = VirtualClock()
        service = _service(tmp_path, clock=clock.monotonic, sleep=clock.sleep)
        service.start()
        try:
            service.registry.ingest(_record(0.0, xid=31))
            clock.advance(7.0)
            metrics = service.render_metrics()
            line = next(
                l for l in metrics.splitlines()
                if l.startswith("repro_fleet_ingest_age_seconds")
            )
            assert float(line.split()[-1]) == 7.0
        finally:
            service.stop(timeout=10.0)
