"""Shared fixtures.

The expensive synthetic datasets are session-scoped: many test modules share
one small Ampere dataset (scale 0.02, ~1,300 errors, ~29k jobs) and one H100
dataset, so the suite stays fast while still exercising the full substrate.
"""

from __future__ import annotations

import pytest

from repro.cluster import DeltaShape, build_delta_cluster
from repro.core import DeltaStudy
from repro.datasets import synthesize_delta, synthesize_h100

#: One fixed seed for the shared datasets; individual tests that probe
#: seed-sensitivity build their own.
SEED = 1234

#: Scale of the shared Ampere dataset (fraction of the 855-day window).
SCALE = 0.02


@pytest.fixture(scope="session")
def delta_cluster():
    """The full Delta-shaped cluster (286 GPU nodes, 1,168 GPUs)."""
    return build_delta_cluster()


@pytest.fixture(scope="session")
def small_cluster():
    """A miniature cluster with every node kind present."""
    return build_delta_cluster(DeltaShape(2, 3, 3, 1, 2))


@pytest.fixture(scope="session")
def dataset():
    """The shared small Ampere dataset (jobs + errors + logs)."""
    return synthesize_delta(scale=SCALE, seed=SEED)


@pytest.fixture(scope="session")
def study(dataset):
    """A DeltaStudy over the shared dataset with stages pre-run."""
    built = DeltaStudy.from_dataset(dataset)
    built.errors  # force Stage I+II once for the whole session
    return built


@pytest.fixture(scope="session")
def h100_dataset():
    return synthesize_h100(seed=SEED)


@pytest.fixture(scope="session")
def h100_study(h100_dataset):
    built = DeltaStudy.from_dataset(h100_dataset)
    built.errors
    return built
