"""Cluster substrate: GPU specs, nodes, Delta inventory."""

import pytest

from repro.cluster.gpu import (
    GPU_SPECS,
    GpuArchitecture,
    GpuModel,
    pci_bus_for_slot,
)
from repro.cluster.inventory import ClusterInventory, DeltaShape, build_delta_cluster
from repro.cluster.node import NODE_CONFIGS, NodeKind, make_node


class TestGpuSpecs:
    def test_every_model_has_a_spec(self):
        assert set(GPU_SPECS) == {GpuModel.A40, GpuModel.A100, GpuModel.H100}

    def test_a40_lacks_containment(self):
        # Section 2.3.2: error containment / page offlining are A100+H100 only.
        assert not GPU_SPECS[GpuModel.A40].supports_error_containment
        assert GPU_SPECS[GpuModel.A100].supports_error_containment
        assert GPU_SPECS[GpuModel.H100].supports_page_offlining

    def test_architectures(self):
        assert GPU_SPECS[GpuModel.A100].architecture is GpuArchitecture.AMPERE
        assert GPU_SPECS[GpuModel.H100].architecture is GpuArchitecture.HOPPER

    def test_ampere_row_remap_budget(self):
        # Table 1 footnote: Ampere supports up to 512 row remappings.
        assert GPU_SPECS[GpuModel.A100].max_row_remaps == 512

    def test_pci_slots_unique(self):
        buses = [pci_bus_for_slot(i) for i in range(8)]
        assert len(set(buses)) == 8

    def test_pci_slot_out_of_range(self):
        with pytest.raises(ValueError):
            pci_bus_for_slot(8)


class TestNodes:
    def test_make_node_instantiates_gpus(self):
        node = make_node(NodeKind.A100_X8, 3)
        assert node.node_id == "gpuc003"
        assert node.gpu_count == 8
        assert all(g.model is GpuModel.A100 for g in node.gpus)

    def test_cpu_node_has_no_gpus(self):
        node = make_node(NodeKind.CPU, 1)
        assert not node.is_gpu_node

    def test_gpu_by_bus(self):
        node = make_node(NodeKind.A40_X4, 1)
        gpu = node.gpus[2]
        assert node.gpu_by_bus(gpu.pci_bus) is gpu
        with pytest.raises(KeyError):
            node.gpu_by_bus("0000:FF:00")

    def test_every_kind_has_config(self):
        assert set(NODE_CONFIGS) == set(NodeKind)


class TestDeltaInventory:
    def test_paper_shape(self, delta_cluster):
        summary = delta_cluster.summary()
        # Figure 2: 132 CPU nodes + 286 GPU nodes; 1,168 GPUs; 206 Ampere
        # nodes with 848 Ampere GPUs.
        assert summary["cpu_nodes"] == 132
        assert summary["gpu_nodes"] == 286
        assert summary["gpus"] == 1168
        assert summary["ampere_nodes"] == 206
        assert summary["ampere_gpus"] == 848
        assert summary["hopper_gpus"] == 320

    def test_gpu_lookup(self, delta_cluster):
        node = delta_cluster.gpu_nodes[0]
        gpu = node.gpus[0]
        assert delta_cluster.gpu(node.node_id, gpu.pci_bus) is gpu

    def test_duplicate_node_ids_rejected(self):
        node = make_node(NodeKind.A40_X4, 1)
        with pytest.raises(ValueError):
            ClusterInventory([node, node])

    def test_scaled_shape_keeps_every_kind(self):
        cluster = build_delta_cluster(scale=0.05)
        kinds = {n.kind for n in cluster.nodes}
        assert kinds == set(NodeKind)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            DeltaShape().scaled(0.0)

    def test_contains(self, delta_cluster):
        assert "gpua001" in delta_cluster
        assert "nope" not in delta_cluster
