"""NVLink topology per node kind."""

import pytest

from repro.cluster.node import NodeKind, make_node
from repro.cluster.topology import nvlink_topology_for


class TestTopologies:
    def test_a40_is_bridged_pairs(self):
        topo = nvlink_topology_for(NodeKind.A40_X4)
        assert topo.peers(0) == (1,)
        assert topo.peers(2) == (3,)
        # Pairs are isolated from each other.
        assert topo.reachable(0) == (0, 1)

    def test_a100_x4_fully_connected(self):
        topo = nvlink_topology_for(NodeKind.A100_X4)
        assert topo.peers(0) == (1, 2, 3)
        assert topo.reachable(2) == (0, 1, 2, 3)

    def test_a100_x8_nvswitch_all_to_all(self):
        topo = nvlink_topology_for(NodeKind.A100_X8)
        assert len(topo.peers(5)) == 7
        assert topo.reachable(0) == tuple(range(8))
        assert topo.num_gpus == 8

    def test_gh200_connected(self):
        topo = nvlink_topology_for(NodeKind.GH200_X4)
        assert topo.reachable(0) == (0, 1, 2, 3)

    def test_cpu_node_has_none(self):
        assert nvlink_topology_for(NodeKind.CPU) is None

    def test_accepts_node_objects(self):
        node = make_node(NodeKind.A100_X4, 1)
        assert nvlink_topology_for(node).num_gpus == 4

    def test_links_are_canonical_pairs(self):
        topo = nvlink_topology_for(NodeKind.A100_X8)
        assert all(a < b for a, b in topo.links)


class TestNetworkxExport:
    def test_graph_matches_links(self):
        networkx = pytest.importorskip("networkx")
        topo = nvlink_topology_for(NodeKind.A100_X4)
        graph = topo.to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 6
        assert networkx.is_connected(graph)
