"""GSP substrate: hang hazard, watchdog, the AWS mitigation trade-off."""

import numpy as np
import pytest

from repro.gsp.driver import DriverConfig, GpuDriver, RpcResult
from repro.gsp.processor import GspProcessor, GspState, RpcRequest


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestGspProcessor:
    def test_healthy_service(self, rng):
        gsp = GspProcessor(base_hang_prob=0.0)
        gsp.submit(RpcRequest("GSP_RM_CONTROL", 0.0))
        completion = gsp.service_one(0.0, rng)
        assert completion is not None and completion > 0.0
        assert gsp.rpcs_served == 1

    def test_hang_hazard_grows_with_load(self):
        gsp = GspProcessor(base_hang_prob=1e-4, load_hang_factor=0.5)
        idle = gsp.hang_probability()
        for i in range(20):
            gsp.submit(RpcRequest("GSP_RM_ALLOC", 0.0))
        assert gsp.hang_probability() > idle * 5

    def test_hung_gsp_answers_nothing(self, rng):
        gsp = GspProcessor(base_hang_prob=1.0)
        gsp.submit(RpcRequest("GSP_RM_CONTROL", 0.0))
        assert gsp.service_one(0.0, rng) is None
        assert gsp.state is GspState.HUNG
        gsp.submit(RpcRequest("GSP_RM_CONTROL", 1.0))
        assert gsp.service_one(1.0, rng) is None  # still hung

    def test_reset_recovers(self, rng):
        gsp = GspProcessor(base_hang_prob=1.0)
        gsp.submit(RpcRequest("x", 0.0))
        gsp.service_one(0.0, rng)
        gsp.reset()
        assert gsp.is_responsive()
        assert gsp.queue_depth == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            GspProcessor(base_hang_prob=2.0)
        with pytest.raises(ValueError):
            GspProcessor(load_hang_factor=-1.0)


class TestGpuDriver:
    def test_timeout_logs_and_disables_gpu(self, rng):
        driver = GpuDriver(
            DriverConfig(gsp_enabled=True), GspProcessor(base_hang_prob=1.0)
        )
        assert driver.control_call(rng) is RpcResult.TIMEOUT
        assert not driver.gpu_operable
        assert driver.stats.timeouts == 1
        # Subsequent calls hit a lost GPU until a reset.
        assert driver.control_call(rng) is RpcResult.GPU_LOST
        driver.reset_gpu()
        assert driver.gpu_operable

    def test_watchdog_burns_six_seconds(self, rng):
        driver = GpuDriver(
            DriverConfig(gsp_enabled=True, watchdog_seconds=6.0),
            GspProcessor(base_hang_prob=1.0),
        )
        driver.control_call(rng)
        assert driver.stats.unavailable_seconds == pytest.approx(6.0)

    def test_disabled_gsp_never_times_out(self, rng):
        driver = GpuDriver(DriverConfig(gsp_enabled=False))
        stats = driver.run_workload(2_000, rng, burst_depth=8)
        assert stats.timeouts == 0
        assert stats.calls == 2_000

    def test_disabled_gsp_costs_host_cpu(self, rng):
        config = DriverConfig(gsp_enabled=False, host_cpu_cost=0.01)
        driver = GpuDriver(config)
        driver.run_workload(1_000, rng)
        on_driver = GpuDriver(
            DriverConfig(gsp_enabled=True), GspProcessor(base_hang_prob=0.0)
        )
        on_driver.run_workload(1_000, rng)
        # The paper/AWS trade-off: disabling GSP multiplies host CPU cost.
        assert driver.stats.host_cpu_seconds > 10 * on_driver.stats.host_cpu_seconds

    def test_demanding_workloads_raise_timeout_rate(self):
        def rate(burst):
            driver = GpuDriver(
                DriverConfig(gsp_enabled=True),
                GspProcessor(base_hang_prob=3e-5, load_hang_factor=0.5),
            )
            stats = driver.run_workload(15_000, np.random.default_rng(1),
                                        burst_depth=burst)
            return stats.timeouts

        assert rate(12) > rate(0)

    def test_spontaneity(self, rng):
        # Hangs arrive with no warning: a long healthy streak then a
        # timeout — the "appeared in isolation" property.
        driver = GpuDriver(
            DriverConfig(gsp_enabled=True),
            GspProcessor(base_hang_prob=5e-4),
        )
        stats = driver.run_workload(10_000, rng)
        assert stats.timeouts >= 1
        assert stats.calls - stats.timeouts - stats.gpu_lost_calls > 5_000
