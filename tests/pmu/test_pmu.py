"""PMU/SPI substrate: bus retries, the DVFS loop, the PMU->MMU cascade."""

import numpy as np
import pytest

from repro.pmu.dvfs import DVFS_TABLE, DvfsController, OperatingPoint
from repro.pmu.spi import SpiBus, SpiConfig, SpiResult


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestSpiBus:
    def test_clean_bus_round_trip(self, rng):
        bus = SpiBus(SpiConfig(corruption_prob=0.0))
        assert bus.write(0x10, 42, rng) is SpiResult.OK
        status, value = bus.read(0x10, rng)
        assert status is SpiResult.OK and value == 42

    def test_retries_absorb_occasional_corruption(self, rng):
        bus = SpiBus(SpiConfig(corruption_prob=0.2, max_retries=8))
        failures = sum(
            bus.read(0x10, rng)[0] is SpiResult.READ_FAILURE for _ in range(500)
        )
        assert failures == 0
        assert bus.corruptions > 0

    def test_dead_bus_fails_reads(self, rng):
        bus = SpiBus(SpiConfig(corruption_prob=1.0, max_retries=2))
        status, value = bus.read(0x10, rng)
        assert status is SpiResult.READ_FAILURE and value is None
        assert bus.read_failures == 1
        assert bus.transactions == 3  # initial try + 2 retries

    def test_failure_rate_is_corruption_to_the_retries(self, rng):
        config = SpiConfig(corruption_prob=0.3, max_retries=1)
        bus = SpiBus(config)
        n = 30_000
        failures = sum(
            bus.read(0x10, rng)[0] is SpiResult.READ_FAILURE for _ in range(n)
        )
        assert failures / n == pytest.approx(0.3**2, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpiConfig(corruption_prob=1.5)
        with pytest.raises(ValueError):
            SpiConfig(max_retries=-1)


class TestOperatingPoints:
    def test_table_monotone(self):
        frequencies = [p.frequency_mhz for p in DVFS_TABLE]
        voltages = [p.voltage_mv for p in DVFS_TABLE]
        assert frequencies == sorted(frequencies)
        assert voltages == sorted(voltages)

    def test_mismatch_zero_on_self(self):
        point = DVFS_TABLE[0]
        assert point.mismatch(point) == 0.0

    def test_demanded_point_tracks_load(self):
        assert DvfsController.demanded_point(0.0) == DVFS_TABLE[0]
        assert DvfsController.demanded_point(0.99) == DVFS_TABLE[-1]
        with pytest.raises(ValueError):
            DvfsController.demanded_point(1.5)


class TestCascade:
    def test_healthy_loop_produces_no_xids(self, rng):
        controller = DvfsController(SpiBus(SpiConfig(corruption_prob=0.0)))
        for load in (0.1, 0.5, 0.9, 0.2):
            assert controller.tick(load, rng) == []
        assert controller.report.mmu_faults == 0

    def test_spi_failure_logs_122_then_stale_window(self, rng):
        controller = DvfsController(
            SpiBus(SpiConfig(corruption_prob=1.0, max_retries=0)),
            stale_ticks_after_failure=3,
        )
        xids = controller.tick(0.9, rng)
        assert 122 in xids
        assert controller.report.spi_failures == 1
        # The following ticks are stale: no new SPI reads are attempted.
        transactions_before = controller.bus.transactions
        controller.tick(0.9, rng)
        assert controller.bus.transactions == transactions_before

    def test_pmu_to_mmu_edge_near_paper(self):
        """The derived cascade probability lands on the measured 0.82."""
        controller = DvfsController(SpiBus(SpiConfig(corruption_prob=0.08)))
        report = controller.run(250_000, np.random.default_rng(1))
        assert report.spi_failures > 80
        assert report.p_mmu_given_spi_failure == pytest.approx(0.82, abs=0.08)

    def test_no_spi_failures_nan_probability(self, rng):
        controller = DvfsController(SpiBus(SpiConfig(corruption_prob=0.0)))
        report = controller.run(100, rng)
        assert np.isnan(report.p_mmu_given_spi_failure)

    def test_mmu_faults_only_under_mismatch(self):
        # Constant load: the programmed point always matches the demanded
        # one, so even a flaky bus causes no MMU faults *while healthy*.
        controller = DvfsController(
            SpiBus(SpiConfig(corruption_prob=0.0)),
        )
        report = controller.run(
            5_000, np.random.default_rng(2),
            load_profile=np.full(100, 0.5),
        )
        assert report.mmu_faults == 0

    def test_stale_window_length_raises_cascade_probability(self):
        def probability(stale):
            controller = DvfsController(
                SpiBus(SpiConfig(corruption_prob=0.08)),
                stale_ticks_after_failure=stale,
            )
            report = controller.run(150_000, np.random.default_rng(3))
            return report.p_mmu_given_spi_failure

        assert probability(6) > probability(1)
