"""SVG rendering: structural validity and content checks."""

import xml.etree.ElementTree as ET

import pytest

from repro.viz.charts import bar_chart, cdf_chart, grouped_bar_chart, line_chart
from repro.viz.svg import SvgCanvas

SVG_NS = "{http://www.w3.org/2000/svg}"


def _parse(canvas: SvgCanvas) -> ET.Element:
    return ET.fromstring(canvas.render())


def _count(root: ET.Element, tag: str) -> int:
    return len(root.findall(f".//{SVG_NS}{tag}"))


class TestCanvas:
    def test_valid_xml_document(self):
        canvas = SvgCanvas(100, 80)
        canvas.rect(1, 2, 3, 4, fill="#fff")
        canvas.line(0, 0, 10, 10)
        canvas.circle(5, 5, 2, fill="#000")
        canvas.text(1, 1, "hello <world> & co")
        root = _parse(canvas)
        assert root.attrib["width"] == "100"
        assert _count(root, "rect") == 2  # background + the rect
        assert _count(root, "circle") == 1

    def test_text_escaped(self):
        canvas = SvgCanvas(50, 50)
        canvas.text(0, 0, "a<b>&c")
        root = _parse(canvas)
        text = root.find(f".//{SVG_NS}text")
        assert text.text == "a<b>&c"

    def test_arrow_draws_three_lines(self):
        canvas = SvgCanvas(50, 50)
        canvas.arrow(0, 0, 20, 20)
        assert _count(_parse(canvas), "line") == 3

    def test_save(self, tmp_path):
        canvas = SvgCanvas(10, 10)
        path = canvas.save(tmp_path / "sub" / "x.svg")
        assert path.exists()
        ET.parse(path)  # parses cleanly from disk

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 10)

    def test_rect_tooltip(self):
        canvas = SvgCanvas(50, 50)
        canvas.rect(0, 0, 5, 5, fill="#fff", title="MMU: 42")
        root = _parse(canvas)
        title = root.find(f".//{SVG_NS}title")
        assert title is not None and title.text == "MMU: 42"


class TestCharts:
    def test_bar_chart_one_bar_per_value(self):
        canvas = bar_chart("T", ["a", "b", "c"], [1.0, 10.0, 100.0], log_y=True)
        root = _parse(canvas)
        bars = [
            r for r in root.findall(f".//{SVG_NS}rect")
            if r.find(f"{SVG_NS}title") is not None
        ]
        assert len(bars) == 3

    def test_bar_chart_mismatched_input(self):
        with pytest.raises(ValueError):
            bar_chart("T", ["a"], [1.0, 2.0])

    def test_grouped_bars(self):
        canvas = grouped_bar_chart(
            "T", ["x", "y"], [("s1", [1, 2]), ("s2", [3, 4])]
        )
        root = _parse(canvas)
        bars = [
            r for r in root.findall(f".//{SVG_NS}rect")
            if r.find(f"{SVG_NS}title") is not None
        ]
        assert len(bars) == 4

    def test_cdf_monotone_path(self):
        canvas = cdf_chart("T", [5.0, 1.0, 3.0, 2.0], log_x=True)
        root = _parse(canvas)
        polyline = root.find(f".//{SVG_NS}polyline")
        points = [
            tuple(float(v) for v in pair.split(","))
            for pair in polyline.attrib["points"].split()
        ]
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys, reverse=True)  # CDF climbs (y shrinks in SVG)

    def test_cdf_rejects_empty(self):
        with pytest.raises(ValueError):
            cdf_chart("T", [])

    def test_line_chart_series_and_legend(self):
        canvas = line_chart("T", [("a", [(0, 1), (1, 2)]), ("b", [(0, 2), (1, 1)])])
        root = _parse(canvas)
        assert _count(root, "polyline") == 2


class TestPaperFigures:
    def test_render_all_figures(self, tmp_path, study):
        from repro.viz.figures import render_all_figures

        paths = render_all_figures(
            stats=study.error_statistics(),
            impact=study.job_impact(),
            availability=study.availability(),
            graph=study.propagation().analyze(),
            sweep={(5.0, 0.995): 0.05, (40.0, 0.995): 0.20},
            directory=tmp_path / "figures",
        )
        assert len(paths) == 7
        for path in paths:
            assert path.exists()
            ET.parse(path)

    def test_propagation_figure_shows_measured_edges(self, study):
        from repro.viz.figures import propagation_figure

        canvas = propagation_figure(study.propagation().analyze())
        text = canvas.render()
        assert "119" in text and "122" in text
        assert "terminal" in text

    def test_figure9b_lines(self, study):
        from repro.viz.figures import errors_vs_duration_figure

        canvas = errors_vs_duration_figure(study.job_impact())
        text = canvas.render()
        assert "Figure 9b" in text
        assert text.count("<polyline") == 2  # completed + GPU-failed series

    def test_propagation_figure_empty_graph(self):
        from repro.core.propagation import PropagationGraph
        from repro.viz.figures import propagation_figure

        canvas = propagation_figure(PropagationGraph(window=60.0))
        assert "no events" in canvas.render()
