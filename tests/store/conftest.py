"""Store fixtures: hand-made record streams plus one on-disk dataset.

Unit tests over segments/queries/recovery use tiny synthetic records;
the identity and ingest-worker tests reuse the shared session dataset,
written to disk once so :class:`FileSetSource` can shard it.
"""

from __future__ import annotations

import pytest

from repro.core.parsing import RawXidRecord


def make_record(
    t,
    *,
    node="gpua001",
    pci="0000:07:00",
    xid=63,
    msg="Row remap",
    pid=1234,
):
    return RawXidRecord(
        time=float(t), node_id=node, pci_bus=pci, xid=xid, message=msg, pid=pid
    )


@pytest.fixture
def records():
    """Four records over two GPUs, with a timestamp tie and a None pid."""
    return [
        make_record(0.0, xid=63),
        make_record(1.0, node="gpub002", pci="0000:46:00", xid=79, pid=None),
        make_record(1.0, xid=31, msg="MMU fault"),  # tie with the previous row
        make_record(5.0, node="gpub002", pci="0000:46:00", xid=94),
    ]


@pytest.fixture(scope="session")
def logs_dir(dataset, tmp_path_factory):
    """The shared dataset's node logs, materialized once for file sources."""
    directory = tmp_path_factory.mktemp("store-logs")
    dataset.write_logs(directory)
    return directory
