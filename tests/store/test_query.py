"""Query semantics: normalization, zone pruning, vectorized masks."""

import pytest

from repro.store import MATCH_ALL, Query, gpu_serial
from repro.store.segment import read_columns, write_segment


class TestNormalization:
    def test_default_query_is_unconstrained(self):
        assert MATCH_ALL.unconstrained
        assert Query().unconstrained

    def test_empty_sets_and_open_range_collapse_to_none(self):
        query = Query(time_range=(None, None), xids=[], nodes=set())
        assert query.unconstrained

    def test_iterables_freeze(self):
        query = Query(xids=[79, 79, 63])
        assert query.xids == frozenset({63, 79})

    def test_inverted_time_range_rejected(self):
        with pytest.raises(ValueError):
            Query(time_range=(10.0, 5.0))


class TestZonePruning:
    ZONE = {
        "time_min": 100.0,
        "time_max": 200.0,
        "xids": [63, 79],
        "nodes": ["gpua001"],
        "serials": ["gpua001/0000:07:00"],
    }

    def test_disjoint_time_window_prunes(self):
        assert not Query(time_range=(300.0, None)).matches_zone(self.ZONE)
        assert not Query(time_range=(None, 50.0)).matches_zone(self.ZONE)

    def test_overlapping_time_window_keeps(self):
        assert Query(time_range=(150.0, 400.0)).matches_zone(self.ZONE)
        assert Query(time_range=(200.0, 200.0)).matches_zone(self.ZONE)  # closed

    def test_value_sets_prune_and_keep(self):
        assert not Query(xids={31}).matches_zone(self.ZONE)
        assert Query(xids={31, 79}).matches_zone(self.ZONE)
        assert not Query(nodes={"gpub002"}).matches_zone(self.ZONE)
        assert not Query(serials={"gpua001/0000:46:00"}).matches_zone(self.ZONE)

    def test_row_predicate_agrees_with_zone_on_singletons(self, records):
        for record in records:
            zone = {
                "time_min": record.time,
                "time_max": record.time,
                "xids": [record.xid],
                "nodes": [record.node_id],
                "serials": [gpu_serial(record.node_id, record.pci_bus)],
            }
            query = Query(xids={record.xid}, nodes={record.node_id})
            assert query.matches_record(record)
            assert query.matches_zone(zone)


class TestMask:
    @pytest.fixture
    def columns(self, tmp_path, records):
        path = tmp_path / "seg-000001.seg"
        write_segment(path, records)
        return read_columns(path)

    def test_mask_matches_row_predicate(self, columns, records):
        ordered = sorted(records, key=lambda r: r.time)
        for query in (
            Query(time_range=(1.0, 5.0)),
            Query(xids={79, 94}),
            Query(nodes={"gpub002"}),
            Query(serials={"gpub002/0000:46:00"}),
            Query(time_range=(0.0, 1.0), xids={31}),
        ):
            mask = query.mask(columns).tolist()
            expected = [query.matches_record(r) for r in ordered]
            assert mask == expected, query

    def test_unknown_serial_matches_nothing(self, columns):
        query = Query(serials={"nosuch/0000:00:00"})
        assert not query.mask(columns).any()
