"""Segment files: columnar round trips, footers, structural validation."""

import pytest

from repro.store import SCHEMA_VERSION, SegmentCorruptError, StoreSchemaError
from repro.store.segment import (
    MAGIC,
    encode_segment,
    iter_segment_records,
    read_columns,
    read_footer,
    write_segment,
)

from tests.store.conftest import make_record


class TestRoundTrip:
    def test_records_survive_encode_decode_exactly(self, tmp_path, records):
        path = tmp_path / "seg-000001.seg"
        info = write_segment(path, records)
        assert info.n_records == 4
        assert list(iter_segment_records(path)) == records

    def test_rows_are_stable_sorted_by_time(self, tmp_path, records):
        path = tmp_path / "seg-000001.seg"
        shuffled = [records[3], records[0], records[1], records[2]]
        write_segment(path, shuffled)
        replayed = list(iter_segment_records(path))
        assert [r.time for r in replayed] == [0.0, 1.0, 1.0, 5.0]
        # The 1.0 tie keeps *input* order (sorted() is stable): the
        # gpub002 record entered before the MMU-fault record.
        assert [r.xid for r in replayed if r.time == 1.0] == [79, 31]

    def test_none_pid_round_trips(self, tmp_path, records):
        path = tmp_path / "seg-000001.seg"
        write_segment(path, records)
        replayed = list(iter_segment_records(path))
        assert replayed[1].pid is None
        assert replayed[0].pid == 1234

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            encode_segment([])


class TestFooter:
    def test_zone_map_describes_the_batch(self, tmp_path, records):
        path = tmp_path / "seg-000001.seg"
        info = write_segment(path, records)
        footer = read_footer(path)
        zone = footer["zone"]
        assert zone["time_min"] == 0.0 and zone["time_max"] == 5.0
        assert zone["xids"] == [31, 63, 79, 94]
        assert zone["nodes"] == ["gpua001", "gpub002"]
        assert "gpub002/0000:46:00" in zone["serials"]
        assert info.zone["xids"] == (31, 63, 79, 94)

    def test_dictionary_coding_dedupes_messages(self, tmp_path):
        # 500 rows, 1 distinct message: the msg column is codes, the
        # dictionary holds the string once.
        batch = [make_record(float(t)) for t in range(500)]
        path = tmp_path / "seg-000001.seg"
        write_segment(path, batch)
        footer = read_footer(path)
        assert footer["dicts"]["msg"] == ["Row remap"]
        columns = read_columns(path, footer)
        assert len(columns) == 500

    def test_footer_read_does_not_require_columns(self, tmp_path, records):
        # Corrupt a column byte; the footer (tail) must still read fine.
        path = tmp_path / "seg-000001.seg"
        write_segment(path, records)
        payload = bytearray(path.read_bytes())
        payload[len(MAGIC) + 4] ^= 0xFF  # inside the first column array
        path.write_bytes(bytes(payload))
        assert read_footer(path)["n_records"] == 4


class TestValidation:
    def test_truncated_file_is_corrupt(self, tmp_path, records):
        path = tmp_path / "seg-000001.seg"
        write_segment(path, records)
        path.write_bytes(path.read_bytes()[:-9])  # clip the trailing magic
        with pytest.raises(SegmentCorruptError):
            read_footer(path)

    def test_bad_leading_magic_is_corrupt(self, tmp_path, records):
        path = tmp_path / "seg-000001.seg"
        write_segment(path, records)
        payload = bytearray(path.read_bytes())
        payload[0] ^= 0xFF
        path.write_bytes(bytes(payload))
        with pytest.raises(SegmentCorruptError):
            read_footer(path)

    def test_non_segment_file_is_corrupt(self, tmp_path):
        path = tmp_path / "seg-000001.seg"
        path.write_bytes(b"this is not a segment at all, not even close")
        with pytest.raises(SegmentCorruptError):
            read_footer(path)

    def test_future_schema_version_rejected(self, tmp_path, records):
        path = tmp_path / "seg-000001.seg"
        write_segment(path, records)
        old = f'"schema":"{SCHEMA_VERSION}"'.encode()
        new = old.replace(b"/1", b"/9")  # same length: framing stays valid
        payload = path.read_bytes()
        assert payload.count(old) == 1
        path.write_bytes(payload.replace(old, new))
        with pytest.raises(StoreSchemaError):
            read_footer(path)
