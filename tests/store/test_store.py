"""EventStore: append, pushdown queries, compaction, crash recovery."""

import json

import pytest

from repro.store import (
    MANIFEST_NAME,
    EventStore,
    Query,
    StoreError,
    StoreSchemaError,
)

from tests.store.conftest import make_record


def _burst(start, n, **kwargs):
    return [make_record(start + i, **kwargs) for i in range(n)]


class TestLifecycle:
    def test_create_open_exists(self, tmp_path):
        directory = tmp_path / "store"
        assert not EventStore.exists(directory)
        store = EventStore.create(directory, meta={"scale": 0.01})
        assert EventStore.exists(directory)
        reopened = EventStore.open(directory)
        assert reopened.meta == {"scale": 0.01}
        assert reopened.n_records == 0

    def test_create_refuses_existing_store(self, tmp_path):
        EventStore.create(tmp_path / "store")
        with pytest.raises(StoreError):
            EventStore.create(tmp_path / "store")

    def test_open_refuses_non_store_directory(self, tmp_path):
        with pytest.raises(StoreError):
            EventStore.open(tmp_path)

    def test_manifest_schema_mismatch_rejected(self, tmp_path):
        EventStore.create(tmp_path / "store")
        manifest = tmp_path / "store" / MANIFEST_NAME
        data = json.loads(manifest.read_text())
        data["schema"] = "repro.store/999"
        manifest.write_text(json.dumps(data))
        with pytest.raises(StoreSchemaError):
            EventStore.open(tmp_path / "store")


class TestAppendAndQuery:
    def test_append_splits_into_segments(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        written = store.append(_burst(0.0, 25), segment_records=10)
        assert [info.n_records for info in written] == [10, 10, 5]
        assert store.n_segments == 3 and store.n_records == 25

    def test_query_merges_interleaved_segments_in_time_order(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        store.append_segment(_burst(0.0, 5, node="gpua001"))
        store.append_segment(_burst(2.5, 5, node="gpub002", pci="0000:46:00"))
        times = [r.time for r in store.query()]
        assert times == sorted(times)
        assert len(times) == 10

    def test_equal_timestamps_resolve_by_segment_order(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        store.append_segment([make_record(1.0, node="first")])
        store.append_segment([make_record(1.0, node="second")])
        assert [r.node_id for r in store.query()] == ["first", "second"]

    def test_plan_prunes_on_zone_maps(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        store.append_segment(_burst(0.0, 5, xid=63))
        store.append_segment(_burst(100.0, 5, xid=79))
        store.append_segment(_burst(200.0, 5, xid=63))
        candidates, pruned = store.plan(Query(xids={79}))
        assert pruned == 2 and len(candidates) == 1
        candidates, pruned = store.plan(Query(time_range=(150.0, None)))
        assert pruned == 2
        assert [r.xid for r in store.query(Query(xids={79}))] == [79] * 5

    def test_count_agrees_with_materialized_query(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        store.append(_burst(0.0, 30), segment_records=7)
        query = Query(time_range=(5.0, 20.0))
        assert store.count(query) == len(list(store.query(query))) == 16

    def test_content_hash_tracks_physical_state(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        store.append_segment(_burst(0.0, 5))
        first = store.content_hash()
        store.append_segment(_burst(10.0, 5))
        assert store.content_hash() != first
        assert EventStore.open(tmp_path / "store").content_hash() == store.content_hash()

    def test_stats_counts_by_xid(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        store.append_segment(_burst(0.0, 4, xid=63) + _burst(50.0, 2, xid=79))
        stats = store.stats()
        assert stats["counts_by_xid"] == {63: 4, 79: 2}
        assert stats["n_records"] == 6


class TestCompaction:
    def test_small_adjacent_segments_merge(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        store.append(_burst(0.0, 40), segment_records=10)
        assert store.n_segments == 4
        before = list(store.query())
        assert store.compact(threshold=100) == 4
        assert store.n_segments == 1
        assert list(store.query()) == before  # replay order invariant
        assert EventStore.open(tmp_path / "store").n_records == 40

    def test_large_segments_left_alone(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        store.append(_burst(0.0, 40), segment_records=10)
        assert store.compact(threshold=5) == 0
        assert store.n_segments == 4

    def test_big_segment_splits_candidate_runs(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        store.append_segment(_burst(0.0, 2))
        store.append_segment(_burst(10.0, 50))  # above threshold: a wall
        store.append_segment(_burst(100.0, 2))
        before = list(store.query())
        # Neither small segment has a small *adjacent* partner.
        assert store.compact(threshold=10) == 0
        assert list(store.query()) == before


class TestRecovery:
    def test_leftover_tmp_files_are_deleted(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        store.append_segment(_burst(0.0, 3))
        (tmp_path / "store" / "seg-000099.seg.tmp").write_bytes(b"partial")
        (tmp_path / "store" / (MANIFEST_NAME + ".tmp")).write_text("{}")
        reopened = EventStore.open(tmp_path / "store")
        assert not list((tmp_path / "store").glob("*.tmp"))
        assert reopened.n_records == 3

    def test_complete_orphan_segment_is_adopted(self, tmp_path):
        from repro.store.segment import write_segment

        store = EventStore.create(tmp_path / "store")
        store.append_segment(_burst(0.0, 3))
        # Simulate a crash between rename and manifest commit: a whole
        # segment file exists that no manifest entry references.
        orphan = tmp_path / "store" / "seg-000002.seg"
        write_segment(orphan, _burst(100.0, 2))
        reopened = EventStore.open(tmp_path / "store")
        assert reopened.n_segments == 2
        assert reopened.n_records == 5
        # next_seq advanced past the adopted segment: new appends don't collide.
        reopened.append_segment(_burst(200.0, 1))
        assert reopened.n_records == 6

    def test_corrupt_orphan_is_quarantined_not_read(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        store.append_segment(_burst(0.0, 3))
        (tmp_path / "store" / "seg-000042.seg").write_bytes(b"garbage bytes")
        reopened = EventStore.open(tmp_path / "store")
        assert reopened.n_records == 3
        assert (tmp_path / "store" / "seg-000042.seg.corrupt").exists()
        assert not (tmp_path / "store" / "seg-000042.seg").exists()

    def test_interrupted_compaction_garbage_is_removed(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        store.append(_burst(0.0, 20), segment_records=10)
        # Simulate a crash after the compaction commit but before cleanup:
        # the manifest's garbage list still names the replaced files.
        victim = store.manifest.segments[0].name
        store.manifest.garbage = [victim]
        store.manifest.segments = store.manifest.segments[1:]
        store.manifest.commit(store.directory)
        assert (tmp_path / "store" / victim).exists()
        reopened = EventStore.open(tmp_path / "store")
        assert not (tmp_path / "store" / victim).exists()
        assert reopened.manifest.garbage == []
        assert reopened.n_records == 10  # only the surviving segment

    def test_recovery_is_idempotent(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        store.append(_burst(0.0, 20), segment_records=5)
        before = list(store.query())
        for _ in range(3):
            store = EventStore.open(tmp_path / "store")
        assert list(store.query()) == before
