"""Store against the real pipeline: identity, workers, studies, CLI."""

import json

import pytest

from repro.cli import main
from repro.core import DeltaStudy
from repro.pipeline.engine import IngestPipeline
from repro.pipeline.sources import FileSetSource
from repro.store import EventStore, Query, StoreSource, StoreWriter


@pytest.fixture(scope="module")
def pipeline_stream(logs_dir):
    """The reference: the pipeline's merged record stream over the logs."""
    from repro.pipeline.extract import extract_records

    return extract_records(FileSetSource(logs_dir), workers=1)


@pytest.fixture(scope="module")
def built_store(logs_dir, tmp_path_factory):
    """One store ingested (workers=2) from the shared dataset's logs."""
    directory = tmp_path_factory.mktemp("store") / "events"
    store = EventStore.create(directory)
    store.ingest(FileSetSource(logs_dir), workers=2, segment_records=500)
    return store


class TestPipelineIdentity:
    def test_store_replays_the_pipeline_stream_exactly(
        self, built_store, pipeline_stream
    ):
        # The store was built from the pipeline's merged stream; querying
        # it back must reproduce that stream record-for-record.
        assert list(built_store.query()) == pipeline_stream

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_ingest_worker_count_never_changes_content(
        self, logs_dir, tmp_path, pipeline_stream, workers
    ):
        store = EventStore.create(tmp_path / "events")
        store.ingest(
            FileSetSource(logs_dir), workers=workers, segment_records=700
        )
        assert list(store.query()) == pipeline_stream

    def test_identity_survives_compaction_and_reopen(
        self, tmp_path, pipeline_stream
    ):
        # A private store: compaction mutates it, the shared one stays put.
        store = EventStore.create(tmp_path / "events")
        store.append(pipeline_stream, segment_records=500)
        store.compact(threshold=1000)
        reopened = EventStore.open(tmp_path / "events")
        assert list(reopened.query()) == pipeline_stream


class TestStoreSource:
    def test_store_source_shards_prune(self, built_store):
        window = built_store.time_span
        midpoint = (window[0] + window[1]) / 2
        source = StoreSource(built_store, query=Query(time_range=(midpoint, None)))
        shards = source.shards()
        assert 0 < len(shards) < built_store.n_segments
        records = [r for shard in shards for r in shard.iter_records()]
        assert records == list(built_store.query(Query(time_range=(midpoint, None))))

    def test_source_is_reiterable(self, built_store):
        source = StoreSource(built_store)
        assert source.reiterable
        first = [r for shard in source.shards() for r in shard.iter_records()]
        second = [r for shard in source.shards() for r in shard.iter_records()]
        assert first == second


class TestStudyRoundTrip:
    def test_to_store_from_store_reproduces_statistics(
        self, study, dataset, tmp_path
    ):
        fresh = DeltaStudy.from_dataset(dataset)
        store = fresh.to_store(tmp_path / "events", segment_records=900)
        assert store.meta["n_nodes"] == study.n_nodes
        restored = DeltaStudy.from_store(store)
        assert restored.window_hours == study.window_hours
        assert restored.n_gpus == study.n_gpus
        assert restored.store_hash == store.content_hash()
        ours = restored.error_statistics()
        theirs = study.error_statistics()
        assert ours.total_count == theirs.total_count
        assert ours.counts() == theirs.counts()

    def test_store_backed_study_streams_without_materializing(
        self, built_store, dataset
    ):
        study = DeltaStudy.from_store(
            built_store,
            window_hours=dataset.window_seconds / 3600.0,
            n_nodes=dataset.reference_node_count,
        )
        study.errors  # Stage I+II runs off the streaming path
        assert study._records is None  # never materialized the raw stream

    def test_from_store_requires_window_metadata(self, tmp_path):
        store = EventStore.create(tmp_path / "events")
        with pytest.raises(ValueError):
            DeltaStudy.from_store(store)


class TestStoreWriter:
    def test_pipeline_consumer_persists_every_record(
        self, logs_dir, tmp_path, pipeline_stream
    ):
        store = EventStore.create(tmp_path / "events")
        writer = StoreWriter(store, segment_records=600)
        pipeline = IngestPipeline(
            FileSetSource(logs_dir), coalesce=None, consumers=(writer,)
        )
        pipeline.run()
        assert writer.records_written == len(pipeline_stream)
        assert list(store.query()) == pipeline_stream

    def test_flush_on_close_loses_nothing(self, tmp_path, records):
        store = EventStore.create(tmp_path / "events")
        writer = StoreWriter(store, segment_records=1000)  # never auto-flushes
        for record in records:
            writer.on_record(record)
        assert store.n_records == 0
        writer.close()
        assert store.n_records == len(records)


class TestStoreCli:
    @pytest.fixture()
    def data_dir(self, tmp_path):
        directory = tmp_path / "data"
        assert main([
            "synthesize", str(directory), "--scale", "0.004", "--seed", "3",
        ]) == 0
        return directory

    def test_build_stats_query(self, data_dir, tmp_path, capsys):
        store_dir = tmp_path / "events"
        capsys.readouterr()
        assert main([
            "store", "build", str(data_dir), str(store_dir),
            "--scale", "0.004", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "records" in out and "segment" in out

        assert main(["store", "stats", str(store_dir), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["n_records"] > 0
        assert stats["meta"]["scale"] == 0.004

        assert main(["store", "query", str(store_dir), "--count"]) == 0
        assert int(capsys.readouterr().out.strip()) == stats["n_records"]

    def test_query_filters_and_prints_records(self, data_dir, tmp_path, capsys):
        store_dir = tmp_path / "events"
        main(["store", "build", str(data_dir), str(store_dir),
              "--scale", "0.004", "--seed", "3"])
        capsys.readouterr()
        assert main([
            "store", "query", str(store_dir), "--xids", "48", "--limit", "5",
        ]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        assert len(lines) <= 5
        assert all("\t48\t" in line for line in lines)

    def test_study_store_read_through_matches_plain(
        self, data_dir, tmp_path, capsys
    ):
        base = ["study", "--dataset", str(data_dir), "--scale", "0.004",
                "--seed", "3"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        store_flag = ["--store", str(tmp_path / "events")]
        assert main(base + store_flag) == 0  # cold: builds the store
        cold = capsys.readouterr().out
        assert main(base + store_flag) == 0  # warm: reuses it
        warm = capsys.readouterr().out
        assert plain == cold == warm
        assert EventStore.exists(tmp_path / "events")

    def test_study_store_scale_mismatch_is_a_clean_error(
        self, data_dir, tmp_path, capsys
    ):
        store_flag = ["--store", str(tmp_path / "events")]
        main(["study", "--dataset", str(data_dir), "--scale", "0.004",
              "--seed", "3"] + store_flag)
        capsys.readouterr()
        assert main(["study", "--dataset", str(data_dir), "--scale", "0.008",
                     "--seed", "3"] + store_flag) == 2
        assert "error:" in capsys.readouterr().out

    def test_experiment_manifest_records_store_hash(
        self, data_dir, tmp_path, capsys
    ):
        store_dir = tmp_path / "events"
        capsys.readouterr()
        assert main([
            "experiment", "table1", "--scale", "0.004", "--seed", "3",
            "--store", str(store_dir), "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        expected = EventStore.open(store_dir).content_hash()
        assert payload["manifest"]["config_hashes"]["store"] == expected

    def test_serve_simulate_with_store_leaves_durable_history(
        self, tmp_path, capsys
    ):
        logs = tmp_path / "logs"
        store_dir = tmp_path / "events"
        assert main([
            "serve", str(logs), "--simulate", "--seed", "11",
            "--store", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "store:" in out
        store = EventStore.open(store_dir)
        assert store.n_records > 0
