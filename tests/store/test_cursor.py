"""ReplayCursor: windowed walks must replay the flat query stream."""

import math

import pytest

from repro.store import EventStore, Query, ReplayCursor

from tests.store.conftest import make_record


def _spread(tmp_path, *, hours=30, per_hour=3):
    """A store spanning ``hours`` hours, several records per hour."""
    store = EventStore.create(tmp_path / "store")
    records = [
        make_record(
            h * 3600.0 + i,
            node=f"gpua{1 + (h + i) % 3:03d}",
            xid=(31, 63, 79)[i % 3],
        )
        for h in range(hours)
        for i in range(per_hour)
    ]
    store.append(records, segment_records=17)
    return store, records


class TestWindows:
    def test_concatenation_equals_flat_query(self, tmp_path):
        store, records = _spread(tmp_path)
        walked = list(ReplayCursor(store, window_seconds=4 * 3600.0))
        assert walked == list(store.query())
        assert walked == records

    def test_windows_are_half_open_and_cover_exactly_once(self, tmp_path):
        store, records = _spread(tmp_path)
        cursor = ReplayCursor(store, window_seconds=7 * 3600.0)
        seen = []
        for lo, hi, chunk in cursor.windows():
            final = hi > cursor.time_max
            for record in chunk:
                assert lo <= record.time
                if final:
                    assert record.time <= cursor.time_max
                else:
                    assert record.time < hi
            seen.extend(chunk)
        assert seen == records
        assert cursor.exhausted

    def test_pushdown_query_respected_per_window(self, tmp_path):
        store, records = _spread(tmp_path)
        query = Query(xids={79})
        walked = list(ReplayCursor(store, query=query, window_seconds=3600.0))
        assert walked == [r for r in records if r.xid == 79]
        assert walked == list(store.query(query))

    def test_time_range_bounds_the_walk(self, tmp_path):
        store, records = _spread(tmp_path)
        lo, hi = 5 * 3600.0, 20 * 3600.0
        query = Query(time_range=(lo, hi))
        walked = list(ReplayCursor(store, query=query, window_seconds=3600.0))
        assert walked == [r for r in records if lo <= r.time <= hi]

    def test_seek_skips_earlier_history(self, tmp_path):
        store, records = _spread(tmp_path)
        cursor = ReplayCursor(store, window_seconds=3600.0)
        cursor.seek(10 * 3600.0)
        walked = list(cursor)
        assert walked == [r for r in records if r.time >= 10 * 3600.0]

    def test_empty_store_yields_nothing(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        cursor = ReplayCursor(store)
        assert list(cursor) == []
        assert cursor.exhausted
        assert cursor.next_window() is None

    def test_position_advances_monotonically(self, tmp_path):
        store, _ = _spread(tmp_path, hours=5)
        cursor = ReplayCursor(store, window_seconds=3600.0)
        positions = [cursor.position]
        while True:
            window = cursor.next_window()
            if window is None:
                break
            positions.append(cursor.position)
        assert positions == sorted(positions)
        assert math.isinf(cursor.position)

    def test_rejects_bad_window(self, tmp_path):
        store = EventStore.create(tmp_path / "store")
        with pytest.raises(ValueError):
            ReplayCursor(store, window_seconds=0.0)
