"""Incident scenario builders (Figures 1 and 8)."""

import pytest

from repro.core import DeltaStudy
from repro.core.jobimpact import JobImpactAnalyzer
from repro.core.parsing import parse_syslog
from repro.core.coalesce import coalesce_errors
from repro.datasets import gsp_incident, nvlink_multinode_incident, pmu_mmu_incident
from repro.faults.xid import Xid
from repro.slurm.job import ExitCode, JobState


class TestGspIncident:
    def test_figure1_story(self):
        incident = gsp_incident()
        errors = coalesce_errors(parse_syslog(incident.log_lines()))
        assert [e.xid for e in errors] == [int(Xid.GSP)]

        analyzer = JobImpactAnalyzer(incident.slurm_db, errors)
        classified = analyzer.classify_jobs()
        assert classified[1] == (True, (int(Xid.GSP),))

        # Recovery took 23 node-hours (drain + reboot).
        assert incident.slurm_db.total_downtime_node_hours() == pytest.approx(23.0)

    def test_narrative_present(self):
        assert "23" in gsp_incident().narrative


class TestNVLinkIncident:
    def test_figure8_incident1(self):
        incident = nvlink_multinode_incident()
        job = incident.slurm_db.jobs[0]
        assert len(job.nodes) == 4  # four GPUs across four nodes
        assert job.exit_code == int(ExitCode.SEGFAULT)

        errors = coalesce_errors(parse_syslog(incident.log_lines()))
        analyzer = JobImpactAnalyzer(incident.slurm_db, errors)
        assert analyzer.classify_jobs()[2] == (True, (int(Xid.NVLINK),))

    def test_one_faulty_gpu_fails_whole_job(self):
        incident = nvlink_multinode_incident()
        errors = coalesce_errors(parse_syslog(incident.log_lines()))
        # The error touches a single GPU yet the job lost all four.
        assert len({e.gpu_key for e in errors}) == 1
        assert incident.slurm_db.jobs[0].n_gpus == 4


class TestPmuMmuIncident:
    def test_figure8_incident2_propagation(self):
        incident = pmu_mmu_incident()
        errors = coalesce_errors(parse_syslog(incident.log_lines()))
        from repro.core.propagation import PropagationAnalyzer

        graph = PropagationAnalyzer(errors).analyze()
        assert graph.probability(Xid.PMU_SPI, Xid.MMU) == 1.0

        analyzer = JobImpactAnalyzer(incident.slurm_db, errors)
        is_failed, responsible = analyzer.classify_jobs()[3]
        assert is_failed
        assert int(Xid.MMU) in responsible and int(Xid.PMU_SPI) in responsible


class TestEndToEndOnIncidents:
    @pytest.mark.parametrize(
        "builder", [gsp_incident, nvlink_multinode_incident, pmu_mmu_incident]
    )
    def test_pipeline_runs_on_every_incident(self, builder):
        incident = builder()
        study = DeltaStudy(
            incident.log_lines(),
            window_hours=incident.trace.window_seconds / 3600.0,
            n_nodes=1,
            slurm_db=incident.slurm_db,
        )
        report = study.run()
        assert report.statistics.total_count >= 1
        assert report.job_impact.total_gpu_failed() == 1
