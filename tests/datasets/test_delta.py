"""Dataset synthesis orchestration."""

import pytest

from repro.core import DeltaStudy
from repro.datasets import DeltaDatasetConfig, synthesize_delta
from repro.datasets.delta import derive_cordons
from repro.faults.xid import Xid


class TestSynthesizeDelta:
    def test_dataset_shape(self, dataset):
        assert dataset.reference_node_count == 206
        assert len(dataset.trace) > 500
        assert len(dataset.slurm_db) > 10_000
        assert dataset.slurm_db.node_events

    def test_reproducible_per_seed(self):
        a = synthesize_delta(scale=0.005, seed=77)
        b = synthesize_delta(scale=0.005, seed=77)
        assert len(a.trace) == len(b.trace)
        assert [e.time for e in a.trace.events[:20]] == [
            e.time for e in b.trace.events[:20]
        ]
        assert len(a.slurm_db) == len(b.slurm_db)

    def test_without_jobs(self):
        dataset = synthesize_delta(
            scale=0.005, seed=1, config=DeltaDatasetConfig(scale=0.005, seed=1,
                                                           with_jobs=False)
        )
        assert len(dataset.slurm_db) == 0
        assert len(dataset.trace) > 0
        # Without the workload, no MMU emissions come from jobs; the
        # injector still produces its hardware share.
        assert dataset.pids == {}

    def test_log_lines_include_noise_by_default(self, dataset):
        with_noise = sum(1 for _ in dataset.log_lines())
        without = sum(1 for _ in dataset.log_lines(include_noise=False))
        assert with_noise > without

    def test_write_logs_and_reload(self, dataset, tmp_path):
        paths = dataset.write_logs(tmp_path / "logs")
        assert len(paths) > 100  # one file per noisy node
        from repro.syslog import read_log_directory

        study = DeltaStudy(
            read_log_directory(tmp_path / "logs"),
            window_hours=dataset.window_seconds / 3600.0,
            n_nodes=dataset.reference_node_count,
        )
        direct = DeltaStudy.from_dataset(dataset)
        assert len(study.errors) == len(direct.errors)

    def test_slurm_db_round_trip(self, dataset, tmp_path):
        from repro.slurm import SlurmDatabase

        dataset.save_slurm_db(tmp_path / "db.jsonl")
        loaded = SlurmDatabase.load(tmp_path / "db.jsonl")
        assert len(loaded) == len(dataset.slurm_db)
        assert len(loaded.node_events) == len(dataset.slurm_db.node_events)


class TestCordons:
    def test_offender_gpu_cordoned(self, dataset):
        cordons = derive_cordons(dataset.trace, dataset.config)
        assert cordons, "the uncontained offender must trigger cordons"
        for intervals in cordons.values():
            assert all(end > start for start, end in intervals)

    def test_threshold_filters_quiet_gpus(self, dataset):
        config = DeltaDatasetConfig(
            scale=dataset.config.scale, seed=dataset.config.seed,
            cordon_event_threshold=10 ** 9,
        )
        assert derive_cordons(dataset.trace, config) == {}


class TestGroundTruthConsistency:
    def test_truth_failure_probabilities_match_calibration(self, dataset):
        truth = dataset.truth
        mmu_prob = truth.truth_failure_probability(Xid.MMU)
        assert mmu_prob == pytest.approx(0.5867, abs=0.1)

    def test_failed_jobs_end_within_attribution_window(self, dataset):
        by_id = {j.job_id: j for j in dataset.slurm_db.jobs}
        for xid, job_ids in dataset.truth.truth_failures.items():
            for job_id in list(job_ids)[:50]:
                job = by_id[job_id]
                assert job.truth_failed_by_xid is not None

    def test_gpu_failed_jobs_have_nonzero_exit_or_state(self, dataset):
        for job in dataset.slurm_db.jobs:
            if job.truth_failed_by_xid is not None:
                assert not job.succeeded
