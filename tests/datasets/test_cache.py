"""Dataset persistence round-trip."""

import pytest

from repro.core import DeltaStudy
from repro.datasets import load_dataset, save_dataset, synthesize_delta


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    dataset = synthesize_delta(scale=0.004, seed=21)
    directory = tmp_path_factory.mktemp("cache") / "ds"
    save_dataset(dataset, directory)
    return dataset, directory


class TestRoundTrip:
    def test_layout(self, saved):
        _, directory = saved
        for name in ("logs", "slurm.jsonl", "trace.jsonl", "pids.json", "meta.json"):
            assert (directory / name).exists()

    def test_trace_identical(self, saved):
        original, directory = saved
        restored = load_dataset(directory)
        assert len(restored.trace) == len(original.trace)
        for a, b in zip(original.trace.events, restored.trace.events):
            assert (a.time, a.gpu_key, a.xid, a.persistence, a.chain_id,
                    a.chain_pos, a.inoperable) == (
                b.time, b.gpu_key, b.xid, b.persistence, b.chain_id,
                b.chain_pos, b.inoperable,
            )

    def test_slurm_db_and_pids(self, saved):
        original, directory = saved
        restored = load_dataset(directory)
        assert len(restored.slurm_db) == len(original.slurm_db)
        assert restored.pids == original.pids

    def test_metadata(self, saved):
        original, directory = saved
        restored = load_dataset(directory)
        assert restored.profile.name == original.profile.name
        assert restored.config.scale == original.config.scale
        assert restored.window_seconds == original.window_seconds

    def test_analysis_identical_after_reload(self, saved):
        original, directory = saved
        restored = load_dataset(directory)
        counts_a = DeltaStudy.from_dataset(original).error_statistics().counts()
        counts_b = DeltaStudy.from_dataset(restored).error_statistics().counts()
        assert counts_a == counts_b

    def test_unknown_profile_rejected(self, saved, tmp_path):
        import json
        import shutil

        _, directory = saved
        clone = tmp_path / "clone"
        shutil.copytree(directory, clone)
        meta = json.loads((clone / "meta.json").read_text())
        meta["profile"] = "delta-blackwell"
        (clone / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            load_dataset(clone)


class TestTraceFile:
    def test_bad_header_rejected(self, tmp_path):
        from repro.faults.events import FaultTrace

        path = tmp_path / "x.jsonl"
        path.write_text('{"kind": "other"}\n')
        with pytest.raises(ValueError):
            FaultTrace.load(path)
