"""Statistics helpers, including the (mean, P50) -> log-normal inversion."""

import numpy as np
import pytest

from repro.util.stats import (
    DurationSummary,
    empirical_cdf,
    histogram_by_bins,
    lognormal_from_mean_p50,
    percentile,
    summarize_durations,
)


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([1, 2, 3], 50) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 120)


class TestSummarizeDurations:
    def test_empty_gives_zeros(self):
        summary = summarize_durations([])
        assert summary == DurationSummary(0, 0.0, 0.0, 0.0, 0.0)

    def test_basic_fields(self):
        summary = summarize_durations([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.p50 == pytest.approx(2.5)
        assert summary.total == pytest.approx(10.0)

    def test_p95_tracks_tail(self):
        values = [1.0] * 99 + [100.0]
        assert summarize_durations(values).p95 == pytest.approx(1.0, abs=0.2)


class TestLognormalInversion:
    def test_recovers_mean_and_median(self):
        params = lognormal_from_mean_p50(mean=10.0, p50=4.0)
        assert params.mean == pytest.approx(10.0)
        assert params.median == pytest.approx(4.0)

    def test_sampling_matches_parameters(self):
        params = lognormal_from_mean_p50(mean=10.0, p50=4.0)
        rng = np.random.default_rng(0)
        sample = params.sample(rng, 200_000)
        assert np.median(sample) == pytest.approx(4.0, rel=0.05)
        assert sample.mean() == pytest.approx(10.0, rel=0.05)

    def test_degenerate_ratio_falls_back_to_narrow(self):
        # Rounded tables can report mean <= median; the inversion must not
        # produce NaN sigma.
        params = lognormal_from_mean_p50(mean=3.9, p50=4.0)
        assert params.sigma == pytest.approx(0.05)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            lognormal_from_mean_p50(0.0, 1.0)
        with pytest.raises(ValueError):
            lognormal_from_mean_p50(1.0, -1.0)


class TestEmpiricalCdf:
    def test_monotone_and_normalized(self):
        values, cdf = empirical_cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) > 0)

    def test_empty(self):
        values, cdf = empirical_cdf([])
        assert values.size == 0 and cdf.size == 0


class TestHistogram:
    def test_counts_per_bin(self):
        counts, edges = histogram_by_bins([0.5, 1.5, 1.6, 3.0], [0, 1, 2, 4])
        assert list(counts) == [1, 2, 1]
