"""Timestamp formatting/parsing: the syslog boundary must round-trip."""

import datetime as dt

import pytest

from repro.util.timeutil import (
    DAY,
    EPOCH,
    HOUR,
    MINUTE,
    format_duration,
    format_timestamp,
    parse_timestamp,
)


class TestFormatTimestamp:
    def test_epoch_is_zero(self):
        assert format_timestamp(0.0) == "2022-01-01T00:00:00.000"

    def test_millisecond_precision(self):
        assert format_timestamp(1.234) == "2022-01-01T00:00:01.234"

    def test_rounding_carry_into_next_second(self):
        assert format_timestamp(1.9996) == "2022-01-01T00:00:02.000"

    def test_day_rollover(self):
        assert format_timestamp(DAY).startswith("2022-01-02T00:00:00")

    def test_non_midnight_epoch_falls_back(self):
        epoch = dt.datetime(2022, 1, 1, 6, 30, 0)
        assert format_timestamp(0.0, epoch=epoch).startswith("2022-01-01T06:30:00")

    def test_large_offsets_render_correct_year(self):
        # 855 days past the epoch lands in May 2024, like the paper's window.
        assert format_timestamp(855 * DAY).startswith("2024-05-05")


class TestParseTimestamp:
    def test_parses_whole_seconds(self):
        assert parse_timestamp("2022-01-01T00:00:05") == 5.0

    def test_parses_fractional(self):
        assert parse_timestamp("2022-01-01T00:00:05.250") == pytest.approx(5.25)

    def test_round_trip_millisecond_accuracy(self):
        for value in (0.0, 0.123, 59.999, 3600.5, 86_399.25, 1_000_000.75):
            parsed = parse_timestamp(format_timestamp(value))
            assert parsed == pytest.approx(value, abs=0.001)

    def test_round_trip_across_two_and_a_half_years(self):
        value = 855 * DAY - 1.5
        assert parse_timestamp(format_timestamp(value)) == pytest.approx(value, abs=0.001)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_timestamp("not-a-timestamp")

    def test_custom_epoch(self):
        epoch = dt.datetime(2024, 8, 1)
        assert parse_timestamp("2024-08-01T00:01:00", epoch=epoch) == 60.0


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(12.34) == "12.3s"

    def test_minutes(self):
        assert format_duration(5 * MINUTE) == "5.0m"

    def test_hours(self):
        assert format_duration(2 * HOUR + 5 * MINUTE) == "02h 05m"

    def test_days(self):
        assert format_duration(DAY + 3 * HOUR + 4 * MINUTE) == "1d 03h 04m"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)
