"""RNG stream determinism and independence."""

import numpy as np

from repro.util.rng import RngStreams, spawn_rng


class TestSpawnRng:
    def test_same_path_same_stream(self):
        a = spawn_rng(7, "faults", "gsp").random(5)
        b = spawn_rng(7, "faults", "gsp").random(5)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        a = spawn_rng(7, "faults", "gsp").random(5)
        b = spawn_rng(7, "faults", "nvlink").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(8, "x").random(5)
        assert not np.array_equal(a, b)

    def test_path_order_matters(self):
        a = spawn_rng(7, "a", "b").random(3)
        b = spawn_rng(7, "b", "a").random(3)
        assert not np.array_equal(a, b)


class TestRngStreams:
    def test_get_caches_stream_state(self):
        streams = RngStreams(7)
        first = streams.get("x").random()
        second = streams.get("x").random()
        # Same generator object: state advances between calls.
        assert first != second

    def test_fork_prefixes_path(self):
        root = RngStreams(7)
        forked = RngStreams(7).fork("faults")
        assert np.array_equal(
            root.get("faults", "gsp").random(4), forked.get("gsp").random(4)
        )

    def test_streams_are_independent_of_sibling_consumption(self):
        # Drawing heavily from one stream must not shift another.
        s1 = RngStreams(7)
        s1.get("hungry").random(10_000)
        lean = s1.get("lean").random(4)

        s2 = RngStreams(7)
        expected = s2.get("lean").random(4)
        assert np.array_equal(lean, expected)

    def test_repr_mentions_seed(self):
        assert "seed=7" in repr(RngStreams(7))
