"""Validation helpers."""

import pytest

from repro.util.validation import check_fraction, check_positive, check_probability


def test_check_positive_passes_through():
    assert check_positive("x", 3.0) == 3.0


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_check_positive_rejects(bad):
    with pytest.raises(ValueError, match="x"):
        check_positive("x", bad)


@pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
def test_check_probability_accepts(ok):
    assert check_probability("p", ok) == ok


@pytest.mark.parametrize("bad", [-0.01, 1.01])
def test_check_probability_rejects(bad):
    with pytest.raises(ValueError):
        check_probability("p", bad)


def test_check_fraction_zero_depends_on_flag():
    assert check_fraction("f", 0.0) == 0.0
    with pytest.raises(ValueError):
        check_fraction("f", 0.0, allow_zero=False)
