"""ASCII table rendering."""

import pytest

from repro.util.tables import Table, format_cell


class TestFormatCell:
    def test_int_gets_separators(self):
        assert format_cell(63253) == "63,253"

    def test_float_precision(self):
        assert format_cell(3.14159) == "3.14"
        assert format_cell(3.14159, precision=3) == "3.142"

    def test_large_float_gets_separators(self):
        assert format_cell(132097.5) == "132,097.5"

    def test_nan_renders_dash(self):
        assert format_cell(float("nan")) == "-"

    def test_bool_is_not_treated_as_int(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_string_passthrough(self):
        assert format_cell("MMU Err.") == "MMU Err."


class TestTable:
    def test_render_alignment(self):
        table = Table("T", ["a", "long-header"])
        table.add_row(1, 2.5)
        table.add_row(100, 3.25)
        text = table.render()
        lines = text.splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # every row same width

    def test_wrong_arity_rejected(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_extend(self):
        table = Table("T", ["a"])
        table.extend([[1], [2]])
        assert len(table.rows) == 2

    def test_title_in_output(self):
        table = Table("My Title", ["a"])
        table.add_row(1)
        assert table.render().startswith("My Title")

    def test_str_matches_render(self):
        table = Table("T", ["a"])
        table.add_row(1)
        assert str(table) == table.render()
