"""Per-run metrics and sweep aggregation."""

import pytest

from repro.sim.metrics import (
    AGGREGATE_FIELDS,
    RunMetrics,
    aggregate_metrics,
    mean_ci95,
)


def _metrics(**overrides):
    base = dict(
        completed=True, wall_hours=12.0, useful_hours=10.0, n_gpus=8,
        checkpoint_write_hours=0.5, rework_hours=0.8, restore_hours=0.25,
        repair_wait_hours=0.0, downtime_hours=0.7, gpu_hours_allocated=96.0,
        n_root_events=3, n_interruptions=2, n_inoperable=1, n_checkpoints=5,
        n_spare_swaps=0, offenders_drawn=1, offenders_evicted=0,
        ettr_hours=0.35,
    )
    base.update(overrides)
    return RunMetrics(**base)


class TestRunMetrics:
    def test_derived_quantities(self):
        m = _metrics()
        assert m.goodput == pytest.approx(10.0 / 12.0)
        assert m.wasted_gpu_hours == pytest.approx(96.0 - 10.0 * 8)

    def test_goodput_safe_on_zero_wall(self):
        assert _metrics(wall_hours=0.0).goodput == 0.0

    def test_dict_round_trip(self):
        m = _metrics()
        row = m.to_dict()
        assert row["goodput"] == pytest.approx(m.goodput)
        assert RunMetrics.from_dict(row) == m


class TestAggregation:
    def test_mean_ci95(self):
        mean, ci = mean_ci95([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert ci == pytest.approx(1.96 * (1.0 / 3.0) ** 0.5)
        assert mean_ci95([]) == (0.0, 0.0)
        assert mean_ci95([5.0]) == (5.0, 0.0)

    def test_aggregate_shape(self):
        runs = [_metrics(), _metrics(wall_hours=14.0, completed=False)]
        aggregate = aggregate_metrics(runs)
        assert aggregate["replicas"] == 2
        assert aggregate["completed_fraction"] == pytest.approx(0.5)
        for name in AGGREGATE_FIELDS:
            assert set(aggregate[name]) == {"mean", "ci95"}
        assert aggregate["wall_hours"]["mean"] == pytest.approx(13.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_metrics([])
