"""Recovery policies: the spec grammar and interval resolution."""

import math

import pytest

from repro.sim.policies import (
    CheckpointRestart,
    ElasticScale,
    HotSpare,
    NoCheckpoint,
    RecoveryPolicy,
    parse_policy,
    resolve_interval,
)


class TestParsing:
    def test_bare_names(self):
        assert isinstance(parse_policy("none"), NoCheckpoint)
        assert isinstance(parse_policy("ckpt"), CheckpointRestart)
        assert isinstance(parse_policy("spare"), HotSpare)
        assert isinstance(parse_policy("elastic"), ElasticScale)

    def test_arguments(self):
        assert parse_policy("ckpt:2.5").interval_hours == 2.5
        spare = parse_policy("spare:4:1.5")
        assert spare.n_spares == 4 and spare.interval_hours == 1.5
        assert parse_policy("spare:0").n_spares == 0
        assert parse_policy("elastic:3").interval_hours == 3.0

    def test_case_and_whitespace_forgiven(self):
        assert parse_policy("  CKPT  ").name == "ckpt"

    @pytest.mark.parametrize(
        "bad",
        ["", "nope", "none:1", "ckpt:1:2", "spare:-1", "spare:1:2:3",
         "elastic:a", "ckpt:xyz"],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            parse_policy(bad)

    def test_all_policies_satisfy_protocol(self):
        for spec in ("none", "ckpt", "spare", "elastic"):
            assert isinstance(parse_policy(spec), RecoveryPolicy)


class TestIntervalResolution:
    def test_no_checkpoint_is_infinite(self):
        tau = resolve_interval(
            NoCheckpoint(),
            checkpoint_cost_hours=0.1, restore_cost_hours=0.25, mtbf_hours=10.0,
        )
        assert math.isinf(tau)

    def test_fixed_interval_passes_through(self):
        tau = resolve_interval(
            CheckpointRestart(interval_hours=2.0),
            checkpoint_cost_hours=0.1, restore_cost_hours=0.25, mtbf_hours=10.0,
        )
        assert tau == 2.0

    def test_young_interval_from_mtbf(self):
        tau = resolve_interval(
            CheckpointRestart(),
            checkpoint_cost_hours=0.1, restore_cost_hours=0.25, mtbf_hours=67.0,
        )
        assert tau == pytest.approx(math.sqrt(2 * 0.1 * 67.0))

    def test_degenerate_mtbf_clamps(self):
        # An allocation that drew the worst offender can see an MTBF below
        # the checkpoint cost; the clamp keeps the interval meaningful.
        tau = resolve_interval(
            CheckpointRestart(),
            checkpoint_cost_hours=0.5, restore_cost_hours=0.25, mtbf_hours=0.2,
        )
        assert tau == pytest.approx(0.2)

    def test_infinite_mtbf_disables_checkpointing(self):
        tau = resolve_interval(
            HotSpare(),
            checkpoint_cost_hours=0.1, restore_cost_hours=0.25,
            mtbf_hours=float("inf"),
        )
        assert math.isinf(tau)

    def test_nonpositive_fixed_interval_rejected(self):
        with pytest.raises(ValueError):
            resolve_interval(
                CheckpointRestart(interval_hours=0.0),
                checkpoint_cost_hours=0.1, restore_cost_hours=0.25,
                mtbf_hours=10.0,
            )
