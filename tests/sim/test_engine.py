"""The what-if engine: placement, progress accounting, policy behaviour."""

import pytest

from repro.faults.calibration import AMPERE_CALIBRATION
from repro.faults.variants import profile_variant
from repro.sim.engine import (
    SimTimings,
    SimulationConfig,
    TrainingJobConfig,
    allocate_job,
    simulate_training_run,
)
from repro.sim.policies import CheckpointRestart, NoCheckpoint
from repro.sim.scenarios import build_scenario


@pytest.fixture(scope="module")
def quiet_profile():
    """An Ampere fleet where nothing ever breaks."""
    return profile_variant(
        AMPERE_CALIBRATION,
        name_suffix="quiet",
        drop_xids={xid: True for xid in AMPERE_CALIBRATION.xids},
    )


class TestPlacement:
    def test_allocation_covers_request_exactly(self):
        counts = allocate_job(64, "a100")
        assert sum(counts) == 64
        assert all(1 <= c <= 8 for c in counts)

    def test_oversized_job_grows_the_inventory(self):
        # The stock Hopper partition has 320 GPUs; a 512-GPU what-if must
        # still place (on a grown fleet), not silently shrink.
        counts = allocate_job(512, "h100")
        assert sum(counts) == 512

    def test_unknown_partition_rejected(self):
        with pytest.raises(ValueError):
            TrainingJobConfig(partition="tpu")

    def test_job_validation(self):
        with pytest.raises(ValueError):
            TrainingJobConfig(n_gpus=0)
        with pytest.raises(ValueError):
            TrainingJobConfig(useful_hours=0.0)


class TestQuietWorld:
    def test_no_failures_no_overhead(self, quiet_profile):
        # Young's interval is infinite when nothing fails, so the run is
        # exactly the useful work: goodput 1.0, no checkpoints, no events.
        config = SimulationConfig(
            profile=quiet_profile,
            job=TrainingJobConfig(n_gpus=32, useful_hours=10.0),
            policy=CheckpointRestart(),
        )
        metrics = simulate_training_run(config, seed=1)
        assert metrics.completed
        assert metrics.wall_hours == pytest.approx(10.0)
        assert metrics.goodput == pytest.approx(1.0)
        assert metrics.n_checkpoints == 0
        assert metrics.n_root_events == 0

    def test_fixed_interval_costs_only_the_writes(self, quiet_profile):
        config = SimulationConfig(
            profile=quiet_profile,
            job=TrainingJobConfig(n_gpus=32, useful_hours=10.0),
            policy=CheckpointRestart(interval_hours=2.0),
        )
        metrics = simulate_training_run(config, seed=1)
        assert metrics.completed
        # Checkpoints at 2/4/6/8 h, none at the end.
        assert metrics.n_checkpoints == 4
        assert metrics.wall_hours == pytest.approx(10.0 + 4 * 0.1)
        assert metrics.checkpoint_write_hours == pytest.approx(0.4)


class TestMeasuredWorld:
    def test_deterministic_per_seed_and_replica(self):
        config = build_scenario("a100-256", "ckpt", n_gpus=64, useful_hours=24.0)
        a = simulate_training_run(config, seed=7, replica=3)
        b = simulate_training_run(config, seed=7, replica=3)
        c = simulate_training_run(config, seed=7, replica=4)
        assert a == b
        assert a != c

    @pytest.mark.parametrize("policy", ["ckpt", "spare:2", "elastic"])
    def test_recovered_job_completes(self, policy):
        config = build_scenario("a100-256", policy, n_gpus=64, useful_hours=24.0)
        metrics = simulate_training_run(config, seed=7, replica=1)
        assert metrics.completed
        assert metrics.useful_hours == pytest.approx(24.0)
        assert metrics.wall_hours >= 24.0
        assert 0.0 < metrics.goodput <= 1.0 + 1e-9

    def test_wall_time_accounting_closes(self):
        # Non-elastic runs partition wall time exactly: useful work, rework,
        # committed checkpoint writes, and recovery downtime — plus at most
        # one aborted write per interruption.
        config = build_scenario("a100-256", "ckpt", n_gpus=128, useful_hours=48.0)
        for replica in range(4):
            m = simulate_training_run(config, seed=11, replica=replica)
            assert m.completed
            accounted = (
                m.useful_hours
                + m.rework_hours
                + m.checkpoint_write_hours
                + m.downtime_hours
            )
            slack = m.n_interruptions * config.timings.checkpoint_cost_hours
            assert accounted - 1e-6 <= m.wall_hours <= accounted + slack + 1e-6

    def test_downtime_implies_interruptions(self):
        config = build_scenario("a100-512", "ckpt", useful_hours=48.0)
        m = simulate_training_run(config, seed=3, replica=0)
        if m.n_interruptions:
            assert m.downtime_hours > 0
            assert m.ettr_hours == pytest.approx(
                m.downtime_hours / m.n_interruptions
            )

    def test_no_checkpoint_long_job_hits_the_wall(self):
        # Restart-from-zero on a 512-GPU 50-hour job against the measured
        # process: the run burns its wall-clock cap instead of finishing.
        config = SimulationConfig(
            profile=AMPERE_CALIBRATION,
            job=TrainingJobConfig(n_gpus=512, useful_hours=50.0),
            policy=NoCheckpoint(),
            max_wall_factor=2.0,
        )
        metrics = simulate_training_run(config, seed=5)
        assert not metrics.completed
        assert metrics.wall_hours == pytest.approx(50.0 * 2.0 + 100.0)
        assert metrics.goodput < 1.0

    def test_hot_spare_swaps_and_evictions_bounded(self):
        config = build_scenario("a100-512", "spare:4", useful_hours=72.0)
        m = simulate_training_run(config, seed=2, replica=0)
        assert m.n_spare_swaps <= m.n_inoperable
        assert m.offenders_evicted <= min(m.offenders_drawn, m.n_spare_swaps)

    def test_spare_policy_beats_plain_checkpointing_on_average(self):
        # The drain-and-replace lever: evicting defective parts must help
        # on a fleet whose failure mass is offender-concentrated.
        plain = build_scenario("a100-256", "ckpt", useful_hours=72.0)
        spare = build_scenario("a100-256", "spare:4", useful_hours=72.0)
        n = 6
        plain_goodput = sum(
            simulate_training_run(plain, seed=7, replica=i).goodput
            for i in range(n)
        )
        spare_goodput = sum(
            simulate_training_run(spare, seed=7, replica=i).goodput
            for i in range(n)
        )
        assert spare_goodput > plain_goodput

    def test_workload_mmu_inclusion_raises_event_rate(self):
        base = build_scenario("a100-512", "ckpt", useful_hours=48.0)
        noisy = SimulationConfig(
            profile=base.profile,
            job=base.job,
            policy=base.policy,
            timings=base.timings,
            include_workload_mmu=True,
        )
        n = 4
        base_events = sum(
            simulate_training_run(base, seed=9, replica=i).n_root_events
            for i in range(n)
        )
        noisy_events = sum(
            simulate_training_run(noisy, seed=9, replica=i).n_root_events
            for i in range(n)
        )
        assert noisy_events > base_events
