"""Scenario presets and counterfactual profile wiring."""

import pytest

from repro.faults.xid import Xid
from repro.sim.scenarios import SCENARIOS, build_scenario, list_scenarios


class TestRegistry:
    def test_expected_presets_registered(self):
        names = {name for name, _ in list_scenarios()}
        assert {
            "a100-512", "a100-256", "h100-256", "h100-512",
            "a100-512-no-xid79", "a100-512-burned-in",
        } <= names

    def test_listing_matches_registry(self):
        assert len(list_scenarios()) == len(SCENARIOS)
        for name, description in list_scenarios():
            assert SCENARIOS[name].description == description

    def test_unknown_scenario_names_the_known_ones(self):
        with pytest.raises(ValueError, match="a100-512"):
            build_scenario("z9000", "ckpt")


class TestBuilding:
    def test_policy_spec_or_object(self):
        from repro.sim.policies import HotSpare

        from_spec = build_scenario("a100-256", "spare:3")
        from_object = build_scenario("a100-256", HotSpare(n_spares=3))
        assert from_spec.policy == from_object.policy

    def test_overrides_apply(self):
        config = build_scenario("a100-512", "ckpt", n_gpus=16, useful_hours=5.0)
        assert config.job.n_gpus == 16
        assert config.job.useful_hours == 5.0
        # Untouched fields keep the preset's values.
        assert config.job.partition == "a100"

    def test_h100_scenarios_use_hopper_partition(self):
        config = build_scenario("h100-256", "ckpt")
        assert config.job.partition == "h100"
        assert "h100" in config.profile.name

    def test_no_xid79_world_has_no_xid79(self):
        config = build_scenario("a100-512-no-xid79", "ckpt")
        assert Xid.FALLEN_OFF_BUS not in config.profile.xids
        assert Xid.FALLEN_OFF_BUS in SCENARIOS["a100-512"].profile_factory().xids

    def test_burned_in_world_has_no_offender_skew(self):
        config = build_scenario("a100-512-burned-in", "ckpt")
        assert all(c.offenders is None for c in config.profile.xids.values())
