"""Sweep runner: determinism across workers, caching, resumability."""

import json

import pytest

from repro.sim.sweep import SweepConfig, _load_cache, run_sweep

#: Small enough to keep the suite fast, large enough to exercise the pool.
_BASE = dict(scenario="a100-256", policy="spare:2", seed=13,
             n_gpus=32, useful_hours=12.0)


class TestConfigHash:
    def test_replicas_excluded_from_hash(self):
        a = SweepConfig(replicas=4, **_BASE)
        b = SweepConfig(replicas=400, **_BASE)
        assert a.config_hash() == b.config_hash()

    @pytest.mark.parametrize(
        "change",
        [{"seed": 14}, {"policy": "ckpt"}, {"scenario": "h100-256"},
         {"n_gpus": 64}, {"useful_hours": 13.0}],
    )
    def test_semantic_fields_change_hash(self, change):
        reference = SweepConfig(replicas=4, **_BASE)
        modified = SweepConfig(replicas=4, **{**_BASE, **change})
        assert reference.config_hash() != modified.config_hash()

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepConfig(replicas=0)


class TestDeterminism:
    def test_aggregates_independent_of_worker_count(self):
        # The acceptance criterion: identical aggregates for any K.
        config = SweepConfig(replicas=5, **_BASE)
        serial = run_sweep(config, workers=1)
        parallel = run_sweep(config, workers=3)
        assert serial.runs == parallel.runs
        assert json.dumps(serial.aggregate, sort_keys=True) == json.dumps(
            parallel.aggregate, sort_keys=True
        )

    def test_growing_a_sweep_preserves_early_replicas(self):
        small = run_sweep(SweepConfig(replicas=3, **_BASE), workers=1)
        large = run_sweep(SweepConfig(replicas=5, **_BASE), workers=2)
        assert large.runs[:3] == small.runs


class TestCache:
    def test_resume_reuses_cached_replicas(self, tmp_path):
        cache = str(tmp_path)
        first = run_sweep(SweepConfig(replicas=3, **_BASE), workers=1,
                          cache_dir=cache)
        assert first.n_from_cache == 0
        grown = run_sweep(SweepConfig(replicas=5, **_BASE), workers=2,
                          cache_dir=cache)
        assert grown.n_from_cache == 3
        fresh = run_sweep(SweepConfig(replicas=5, **_BASE), workers=1)
        assert grown.runs == fresh.runs

    def test_cache_isolated_by_config(self, tmp_path):
        cache = str(tmp_path)
        run_sweep(SweepConfig(replicas=2, **_BASE), workers=1, cache_dir=cache)
        other = run_sweep(
            SweepConfig(replicas=2, **{**_BASE, "seed": 99}),
            workers=1, cache_dir=cache,
        )
        assert other.n_from_cache == 0
        assert len(list(tmp_path.glob("sweep-*.jsonl"))) == 2

    def test_torn_final_line_tolerated(self, tmp_path):
        config = SweepConfig(replicas=2, **_BASE)
        cache = str(tmp_path)
        run_sweep(config, workers=1, cache_dir=cache)
        path = next(tmp_path.glob("sweep-*.jsonl"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"replica": 2, "metr')  # interrupted mid-write
        cached = _load_cache(str(path))
        assert set(cached) == {0, 1}
        resumed = run_sweep(SweepConfig(replicas=3, **_BASE), workers=1,
                            cache_dir=cache)
        assert resumed.n_from_cache == 2
        assert resumed.aggregate["replicas"] == 3

    def test_result_to_dict_shape(self):
        result = run_sweep(SweepConfig(replicas=2, **_BASE), workers=1)
        row = result.to_dict()
        assert row["config"]["scenario"] == "a100-256"
        assert row["config_hash"] == result.config_hash
        assert row["aggregate"]["replicas"] == 2
