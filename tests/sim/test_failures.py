"""Calibrated failure process: rates, the offender lottery, chain draws."""

import math

import numpy as np
import pytest

from repro.faults.calibration import AMPERE_CALIBRATION, H100_CALIBRATION
from repro.faults.xid import Xid
from repro.sim.failures import FailureModel


@pytest.fixture(scope="module")
def model():
    return FailureModel(AMPERE_CALIBRATION)


@pytest.fixture(scope="module")
def state(model):
    rng = np.random.default_rng(3)
    return model.allocation_state(
        n_nodes=64, n_gpus=256, population_gpus=848, rng=rng
    )


class TestRates:
    def test_base_rate_positive_and_plausible(self, model):
        # The fleet-average per-node MTBE is ~67 h; the background (offender
        # mass and workload MMU excluded) must be strictly rarer.
        assert model.base_rate_per_node_hour > 0
        assert 1.0 / model.base_rate_per_node_hour > 67.0

    def test_workload_mmu_excluded_by_default(self):
        with_mmu = FailureModel(AMPERE_CALIBRATION, include_workload_mmu=True)
        without = FailureModel(AMPERE_CALIBRATION, include_workload_mmu=False)
        assert without.base_rates[Xid.MMU] < with_mmu.base_rates[Xid.MMU]
        ratio = without.base_rates[Xid.MMU] / with_mmu.base_rates[Xid.MMU]
        assert ratio == pytest.approx(
            1.0 - AMPERE_CALIBRATION.mmu_from_workload_fraction, rel=0.01
        )

    def test_offender_mass_is_concentrated(self, model):
        # Uncontained errors (Xid 95): one of four defective GPUs carries
        # 99 % — the lottery's whole point.
        total, weights = model.offender_rates[Xid.UNCONTAINED]
        assert total > 0
        assert max(weights) > 0.9
        assert sum(weights) == pytest.approx(1.0)

    def test_interrupt_probs_deterministic_per_profile(self, model):
        again = FailureModel(AMPERE_CALIBRATION)
        for xid in model.base_rates:
            assert model.interrupt_prob(xid) == again.interrupt_prob(xid)
        assert all(0.0 <= model.interrupt_prob(x) <= 1.0 for x in model.base_rates)


class TestLottery:
    def test_full_population_draws_every_offender(self, model):
        rng = np.random.default_rng(0)
        state = model.allocation_state(
            n_nodes=206, n_gpus=848, population_gpus=848, rng=rng
        )
        n_skewed = sum(
            skew[1].__len__() for skew in model.offender_rates.values()
        )
        assert len(state.offenders) == n_skewed

    def test_small_job_rarely_draws_offenders(self, model):
        rng = np.random.default_rng(0)
        draws = [
            len(
                model.allocation_state(
                    n_nodes=1, n_gpus=4, population_gpus=848, rng=rng
                ).offenders
            )
            for _ in range(200)
        ]
        # Inclusion probability 4/848 per offender: mostly zero.
        assert sum(1 for d in draws if d == 0) > 150

    def test_eviction_lowers_rate_permanently(self, model):
        rng = np.random.default_rng(1)
        state = model.allocation_state(
            n_nodes=206, n_gpus=848, population_gpus=848, rng=rng
        )
        before = state.total_rate()
        worst = max(
            range(len(state.offenders)),
            key=lambda i: state.offenders[i].rate_per_hour,
        )
        state.evict_offender(worst)
        assert state.total_rate() < before
        assert state.offenders_evicted == 1
        state.evict_offender(worst)  # idempotent
        assert state.offenders_evicted == 1

    def test_suspend_resume_round_trips(self, model):
        rng = np.random.default_rng(1)
        state = model.allocation_state(
            n_nodes=206, n_gpus=848, population_gpus=848, rng=rng
        )
        before = state.total_rate()
        state.suspend_offender(0)
        assert state.total_rate() < before
        state.resume_offender(0)
        assert state.total_rate() == pytest.approx(before)
        assert state.offenders_evicted == 0


class TestDraws:
    def test_gap_is_positive_and_finite(self, state):
        rng = np.random.default_rng(5)
        gaps = [state.next_gap_hours(rng) for _ in range(100)]
        assert all(g > 0 and math.isfinite(g) for g in gaps)

    def test_gap_infinite_at_zero_rate(self, model):
        rng = np.random.default_rng(5)
        empty = model.allocation_state(
            n_nodes=4, n_gpus=16, population_gpus=848, rng=rng
        )
        empty.n_active_nodes = 0
        for i in range(len(empty.offenders)):
            empty.suspend_offender(i)
        assert math.isinf(empty.next_gap_hours(rng))

    def test_draw_resolves_chain_and_repair(self, state):
        rng = np.random.default_rng(7)
        for _ in range(200):
            draw = state.draw(rng)
            assert draw.chain[0] == draw.root_xid
            if draw.inoperable:
                assert draw.repair_hours > 0
            else:
                assert draw.repair_hours == 0.0
            if draw.fatal:
                assert draw.fatal_xid in draw.chain
            assert draw.interrupts == (draw.fatal or draw.inoperable)

    def test_h100_profile_also_works(self):
        model = FailureModel(H100_CALIBRATION)
        rng = np.random.default_rng(9)
        state = model.allocation_state(
            n_nodes=32, n_gpus=128, population_gpus=320, rng=rng
        )
        assert state.total_rate() > 0
        assert state.draw(rng).root_xid in set(model.base_rates) | set(
            model.offender_rates
        )
