"""Event-queue core: ordering, stability, generations."""

from repro.sim.events import EventKind, EventQueue, SimEvent


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.schedule(3.0, EventKind.FAILURE)
        q.schedule(1.0, EventKind.JOB_COMPLETE)
        q.schedule(2.0, EventKind.CHECKPOINT_WRITE)
        times = [q.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        q.schedule(1.0, EventKind.FAILURE)
        q.schedule(1.0, EventKind.RESTORE_DONE)
        q.schedule(1.0, EventKind.DRAIN_END)
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [
            EventKind.FAILURE,
            EventKind.RESTORE_DONE,
            EventKind.DRAIN_END,
        ]

    def test_pop_empty_returns_none(self):
        q = EventQueue()
        assert q.pop() is None

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.schedule(1.0, EventKind.FAILURE)
        assert q and len(q) == 1
        q.pop()
        assert not q


class TestPayloads:
    def test_generation_and_payload_round_trip(self):
        q = EventQueue()
        q.schedule(1.0, EventKind.DRAIN_END, generation=7, payload={"node": 3})
        event = q.pop()
        assert event.generation == 7
        assert event.payload == {"node": 3}

    def test_push_accepts_prebuilt_event(self):
        q = EventQueue()
        q.push(SimEvent(time=2.0, kind=EventKind.SPARE_SWAP))
        assert q.pop().kind is EventKind.SPARE_SWAP
