"""Sources: shard exposure, ordering declarations, record iteration."""

import gzip

import pytest

from repro.core.parsing import RawXidRecord
from repro.pipeline.sources import (
    FileSetSource,
    LinesSource,
    RecordsSource,
    TailSource,
)

LINE = (
    "2022-03-14T02:11:09.113 gpub042 kernel: NVRM: Xid (PCI:0000:C7:00): "
    "79, pid=8821, GPU has fallen off the bus"
)


def _record(t: float, node: str = "n1") -> RawXidRecord:
    return RawXidRecord(time=t, node_id=node, pci_bus="p1", xid=79, message="m")


class TestFileSetSource:
    def test_lists_directory_files_sorted(self, logs_dir):
        source = FileSetSource(logs_dir)
        assert source.paths == sorted(source.paths)
        assert all(p.name.endswith(".log") for p in source.paths)
        assert len(source.shards()) == len(source.paths)

    def test_explicit_paths_keep_caller_order(self, tmp_path):
        a = tmp_path / "b.log"
        b = tmp_path / "a.log"
        for path in (a, b):
            path.write_text(LINE + "\n")
        source = FileSetSource(paths=[a, b])
        assert [p.name for p in source.paths] == ["b.log", "a.log"]

    def test_requires_exactly_one_of_directory_or_paths(self, tmp_path):
        with pytest.raises(ValueError):
            FileSetSource()
        with pytest.raises(ValueError):
            FileSetSource(tmp_path, paths=[])

    def test_reads_gzip_files(self, tmp_path):
        path = tmp_path / "node.log.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(LINE + "\n")
        records = list(FileSetSource(tmp_path).iter_records())
        assert len(records) == 1 and records[0].xid == 79

    def test_declares_parallel_time_ordered(self):
        assert FileSetSource.parallelizable
        assert FileSetSource.merge_by_time
        assert not FileSetSource.live


class TestLinesSource:
    def test_parses_lines(self):
        records = list(LinesSource([LINE, "noise line", LINE]).iter_records())
        assert len(records) == 2

    def test_single_unordered_shard(self):
        source = LinesSource([LINE])
        assert len(source.shards()) == 1
        assert not source.merge_by_time
        assert not source.parallelizable


class TestRecordsSource:
    def test_passes_records_through(self):
        records = [_record(1.0), _record(2.0)]
        assert list(RecordsSource(records).iter_records()) == records

    def test_ordered_flag_enables_time_merge_declaration(self):
        assert RecordsSource([], ordered=True).merge_by_time
        assert not RecordsSource([]).merge_by_time


class TestTailSource:
    def test_streams_live_appends(self, tmp_path):
        source = TailSource(tmp_path, poll_interval=0.01)
        assert source.live
        (tmp_path / "n1.log").write_text(LINE + "\n")
        source.start()
        source.stop()
        records = list(source.iter_records())
        source.join(timeout=5.0)
        assert len(records) == 1 and records[0].node_id == "gpub042"
