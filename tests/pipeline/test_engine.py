"""IngestPipeline: stage composition, engine parity, consumers."""

import pytest

from repro.core.coalesce import CoalesceConfig
from repro.pipeline import (
    Consumer,
    FileSetSource,
    IngestPipeline,
    StreamingCoalesce,
    VectorizedCoalesce,
    make_stage,
)


def _key(e):
    return (e.time, e.node_id, e.pci_bus, e.xid, round(e.persistence, 9), e.n_raw)


class TestEngineParity:
    """The tentpole contract: batch coalescing over the merged stream is
    identical to draining the streaming coalescer over the same stream."""

    def test_vectorized_equals_streaming_on_files(self, logs_dir):
        vec = IngestPipeline(FileSetSource(logs_dir), coalesce="vectorized").run()
        stream = IngestPipeline(FileSetSource(logs_dir), coalesce="streaming").run()
        assert vec.n_records == stream.n_records
        assert [_key(e) for e in vec.errors] == [_key(e) for e in stream.errors]
        assert vec.n_errors == stream.n_errors == len(vec.errors)

    def test_parallel_extraction_same_errors(self, logs_dir):
        serial = IngestPipeline(FileSetSource(logs_dir), workers=1).run()
        parallel = IngestPipeline(FileSetSource(logs_dir), workers=3).run()
        assert [_key(e) for e in serial.errors] == [_key(e) for e in parallel.errors]

    def test_coalesce_config_threads_through(self, logs_dir):
        narrow = IngestPipeline(FileSetSource(logs_dir)).run()
        wide = IngestPipeline(
            FileSetSource(logs_dir),
            coalesce="vectorized",
            coalesce_config=CoalesceConfig(window_seconds=600.0),
        ).run()
        assert len(wide.errors) < len(narrow.errors)


class TestStreamingStage:
    def test_alarms_and_memory_bounded_mode(self, logs_dir):
        seen = []
        stage = StreamingCoalesce(
            alarm_after_seconds=600.0, keep_closed=False, on_alarm=seen.append
        )
        result = IngestPipeline(FileSetSource(logs_dir), coalesce=stage).run()
        assert result.errors == []  # keep_closed=False: nothing retained
        assert result.n_errors > 0
        assert result.alarms == seen
        # The shared dataset contains offender episodes long enough to alarm.
        assert len(seen) > 0

    def test_on_close_sees_every_error(self, logs_dir):
        closed = []
        stage = StreamingCoalesce(keep_closed=True, on_close=closed.append)
        result = IngestPipeline(FileSetSource(logs_dir), coalesce=stage).run()
        assert len(closed) == result.n_errors == len(result.errors)


class TestConsumersAndModes:
    def test_consumers_observe_every_record_and_close(self, logs_dir):
        class Counter(Consumer):
            def __init__(self):
                self.n = 0
                self.closed = False

            def on_record(self, record):
                self.n += 1

            def close(self):
                self.closed = True

        counter = Counter()
        result = IngestPipeline(
            FileSetSource(logs_dir), coalesce=None, consumers=(counter,)
        ).run()
        assert counter.n == result.n_records > 0
        assert counter.closed
        assert result.errors == [] and result.n_errors == 0

    def test_records_iterator_counts(self, logs_dir):
        pipeline = IngestPipeline(FileSetSource(logs_dir), coalesce=None)
        n = sum(1 for _ in pipeline.records())
        assert pipeline.n_records == n > 0

    def test_rejects_config_with_prebuilt_stage(self, logs_dir):
        with pytest.raises(ValueError):
            IngestPipeline(
                FileSetSource(logs_dir),
                coalesce=VectorizedCoalesce(),
                coalesce_config=CoalesceConfig(),
            )

    def test_make_stage_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            make_stage("quantum")
        with pytest.raises(ValueError):
            make_stage("vectorized", keep_closed=False)
