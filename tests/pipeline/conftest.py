"""Pipeline-suite fixtures: the shared dataset written out as node logs."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def logs_dir(dataset, tmp_path_factory):
    """The shared multi-node dataset as on-disk per-node log files."""
    directory = tmp_path_factory.mktemp("pipeline-logs") / "logs"
    paths = dataset.write_logs(directory)
    assert len(paths) > 4  # genuinely multi-node
    return directory
