"""Extract: parallel sharding identity and the k-way time merge."""

import pytest

from repro.core.parsing import RawXidRecord, iter_directory_records
from repro.pipeline.extract import extract_records, iter_source_records
from repro.pipeline.sources import FileSetSource, LinesSource, RecordsSource


class TestParallelIdentity:
    """Satellite: 1, 2, and 4 workers yield byte-identical record streams
    (order included) on a multi-node synthetic dataset."""

    @pytest.fixture(scope="class")
    def serial(self, logs_dir):
        return extract_records(FileSetSource(logs_dir), workers=1)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_stream_identical_to_serial(self, logs_dir, serial, workers):
        parallel = extract_records(FileSetSource(logs_dir), workers=workers)
        assert parallel == serial  # dataclass equality: every field, in order

    def test_stream_nonempty_and_multinode(self, serial):
        assert len(serial) > 1_000
        assert len({r.node_id for r in serial}) > 4

    def test_merged_stream_is_globally_time_ordered(self, serial):
        times = [r.time for r in serial]
        assert times == sorted(times)

    def test_same_multiset_as_unmerged_directory_iteration(self, logs_dir, serial):
        unmerged = sorted(
            iter_directory_records(logs_dir),
            key=lambda r: (r.time, r.node_id, r.pci_bus, r.xid, r.message),
        )
        merged = sorted(
            serial, key=lambda r: (r.time, r.node_id, r.pci_bus, r.xid, r.message)
        )
        assert merged == unmerged


class TestExtractSemantics:
    def test_rejects_nonpositive_workers(self, logs_dir):
        with pytest.raises(ValueError):
            list(iter_source_records(FileSetSource(logs_dir), workers=0))

    def test_single_shard_source_falls_back_to_serial(self):
        source = LinesSource([
            "2022-03-14T02:11:09.113 n1 kernel: NVRM: Xid (PCI:0:1): "
            "31, pid=1, MMU Fault"
        ])
        assert len(extract_records(source, workers=8)) == 1

    def test_unordered_records_source_preserves_input_order(self):
        records = [
            RawXidRecord(time=t, node_id="n1", pci_bus="p", xid=31, message="m")
            for t in (5.0, 1.0, 3.0)
        ]
        assert extract_records(RecordsSource(records)) == records
