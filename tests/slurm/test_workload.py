"""Workload generation shaped by Table 3."""

from collections import Counter

import numpy as np
import pytest

from repro.slurm.job import JobState
from repro.slurm.workload import (
    SIZE_BUCKETS,
    WALLTIME_CAP,
    WorkloadConfig,
    WorkloadModel,
    classify_ml,
)


@pytest.fixture(scope="module")
def jobs():
    model = WorkloadModel(WorkloadConfig(scale=0.02, seed=9, mmu_budget=300.0))
    return model.generate()


class TestBuckets:
    def test_shares_sum_to_one(self):
        assert sum(b.count_share for b in SIZE_BUCKETS) == pytest.approx(1.0, abs=0.001)

    def test_bucket_bounds_contiguous(self):
        for prev, nxt in zip(SIZE_BUCKETS, SIZE_BUCKETS[1:]):
            assert nxt.min_gpus == prev.max_gpus + 1

    def test_sizes_within_bounds(self):
        for bucket in SIZE_BUCKETS:
            assert all(bucket.min_gpus <= s <= bucket.max_gpus for s in bucket.sizes)

    def test_ml_share_derived_from_gpu_hours(self):
        bucket = SIZE_BUCKETS[4]  # 32-64: ML-heavy in the paper
        assert bucket.ml_share == pytest.approx(161.9 / (161.9 + 226.4))


class TestGeneration:
    def test_job_count_scales(self):
        small = WorkloadModel(WorkloadConfig(scale=0.01, seed=1))
        assert small.expected_job_count == pytest.approx(14_451, rel=0.01)

    def test_submit_times_sorted_within_window(self, jobs):
        times = [j.submit_time for j in jobs]
        assert times == sorted(times)
        window = 855 * 86400.0 * 0.02
        assert all(0 <= t < window for t in times)

    def test_size_mix_matches_table3(self, jobs):
        single = sum(1 for j in jobs if j.requested_gpus == 1)
        small = sum(1 for j in jobs if 2 <= j.requested_gpus <= 4)
        assert single / len(jobs) == pytest.approx(0.6986, abs=0.01)
        assert small / len(jobs) == pytest.approx(0.2731, abs=0.01)

    def test_duration_medians_per_bucket(self, jobs):
        singles = [j.duration / 60.0 for j in jobs if j.requested_gpus == 1]
        assert np.median(singles) == pytest.approx(10.15, rel=0.15)

    def test_background_failure_rate(self, jobs):
        failed = sum(1 for j in jobs if j.natural_state is not JobState.COMPLETED)
        assert failed / len(jobs) == pytest.approx(1 - 0.7468, abs=0.01)

    def test_failure_states_diverse(self, jobs):
        states = Counter(j.natural_state for j in jobs)
        assert states[JobState.FAILED] > states[JobState.TIMEOUT] > 0
        assert states[JobState.OUT_OF_MEMORY] > 0

    def test_mmu_budget_distributed(self, jobs):
        total = sum(j.mmu_emissions for j in jobs)
        assert total == pytest.approx(300.0, rel=0.15)
        buggy = [j for j in jobs if j.mmu_emissions > 0]
        assert all(j.mmu_emissions >= 1 for j in buggy)

    def test_user_xid_emissions_rare(self, jobs):
        xid13 = sum(j.xid13_emissions for j in jobs)
        assert 0 < xid13 < len(jobs) * 0.05

    def test_partition_routing(self, jobs):
        big = [j for j in jobs if j.requested_gpus > 4]
        assert all(j.partition == "a100" for j in big)
        small_partitions = {j.partition for j in jobs if j.requested_gpus <= 4}
        assert small_partitions == {"a40", "a100"}

    def test_partition_override(self):
        model = WorkloadModel(
            WorkloadConfig(scale=0.005, seed=1, partition_override="h100")
        )
        assert {j.partition for j in model.generate()} == {"h100"}

    def test_long_haul_jobs_exist(self, jobs):
        longest = max(j.duration for j in jobs)
        assert longest > WALLTIME_CAP

    def test_deterministic(self):
        config = WorkloadConfig(scale=0.005, seed=4)
        a = WorkloadModel(config).generate()
        b = WorkloadModel(config).generate()
        assert [(j.submit_time, j.duration) for j in a] == [
            (j.submit_time, j.duration) for j in b
        ]


class TestClassifyMl:
    @pytest.mark.parametrize("name", ["train_resnet50", "llm_finetune", "bert_pretrain",
                                      "gpt_inference", "MODEL_eval"])
    def test_ml_names(self, name):
        assert classify_ml(name)

    @pytest.mark.parametrize("name", ["namd_run", "wrf_forecast", "bash", "jupyter"])
    def test_non_ml_names(self, name):
        assert not classify_ml(name)

    def test_generated_names_consistent_with_flag(self, jobs):
        sample = jobs[:2000]
        agreement = sum(1 for j in sample if classify_ml(j.name) == j.is_ml)
        assert agreement == len(sample)
