"""Job record semantics."""

import pytest

from repro.slurm.job import ExitCode, JobRecord, JobState


def _job(**kw):
    defaults = dict(
        job_id=1,
        name="train_resnet50",
        user="u001",
        submit_time=0.0,
        start_time=100.0,
        end_time=3_700.0,
        n_gpus=4,
        gpus=(("gpua001", "0000:07:00"), ("gpua001", "0000:46:00"),
              ("gpua002", "0000:07:00"), ("gpua002", "0000:46:00")),
        partition="a40",
        is_ml=True,
    )
    defaults.update(kw)
    return JobRecord(**defaults)


class TestJobRecord:
    def test_elapsed(self):
        assert _job().elapsed == 3_600.0
        assert _job().elapsed_minutes == 60.0

    def test_nodes_deduplicated(self):
        assert _job().nodes == ("gpua001", "gpua002")

    def test_gpu_and_node_hours(self):
        job = _job()
        assert job.gpu_hours == pytest.approx(4.0)
        assert job.node_hours == pytest.approx(2.0)

    def test_succeeded_requires_completed_and_zero_exit(self):
        assert _job().succeeded
        assert not _job(exit_code=1).succeeded
        assert not _job(state=JobState.TIMEOUT).succeeded

    def test_failed_at_truncates_and_records_truth(self):
        failed = _job().failed_at(1_000.0, xid=119, exit_code=int(ExitCode.GENERIC),
                                  state=JobState.NODE_FAIL)
        assert failed.end_time == 1_000.0
        assert failed.truth_failed_by_xid == 119
        assert failed.state is JobState.NODE_FAIL
        assert not failed.succeeded

    def test_failed_at_clamps_to_job_lifetime(self):
        early = _job().failed_at(10.0, 31, 139, JobState.FAILED)
        assert early.end_time == 100.0  # not before start
        late = _job().failed_at(10_000.0, 31, 139, JobState.FAILED)
        assert late.end_time == 3_700.0  # not after natural end

    def test_segfault_exit_code_matches_incident1(self):
        assert int(ExitCode.SEGFAULT) == 139
