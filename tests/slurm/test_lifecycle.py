"""Node lifecycle state machine (the Figure-1 recovery loop)."""

import numpy as np
import pytest

from repro.slurm.lifecycle import (
    LifecycleConfig,
    NodeLifecycle,
    NodeState,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestTransitions:
    def test_allocate_release_cycle(self):
        node = NodeLifecycle("gpua001")
        node.allocate(10.0)
        assert node.state is NodeState.ALLOCATED
        node.release(20.0)
        assert node.state is NodeState.IDLE
        assert len(node.log) == 2

    def test_illegal_transition_rejected(self):
        node = NodeLifecycle("gpua001")
        with pytest.raises(ValueError):
            node.release(5.0)  # IDLE -> IDLE is not a legal move

    def test_drain_from_allocated(self):
        node = NodeLifecycle("gpua001")
        node.allocate(0.0)
        node.drain(100.0, reason="xid119")
        assert node.state is NodeState.DRAINING
        assert node.log[-1].reason == "xid119"


class TestRecovery:
    def test_happy_path(self, rng):
        config = LifecycleConfig(health_pass_prob=1.0, reboot_hours=0.25,
                                 health_check_hours=0.05)
        node = NodeLifecycle("gpua001", config)
        node.drain(0.0, "xid119")
        outcome = node.recover(drain_complete_at=3_600.0, rng=rng)
        assert node.state is NodeState.IDLE
        assert outcome.drain_hours == pytest.approx(1.0)
        assert outcome.reboot_hours == pytest.approx(0.25)
        assert not outcome.replaced
        assert outcome.total_hours == pytest.approx(1.0 + 0.25 + 0.05)

    def test_figure1_magnitude(self, rng):
        """A long drain (pending jobs) plus the reboot loop lands in the
        tens-of-node-hours regime of the Figure-1 incident."""
        config = LifecycleConfig(health_pass_prob=1.0, reboot_hours=1.5)
        node = NodeLifecycle("gpub042", config)
        node.drain(0.0, "xid119 GSP stall")
        outcome = node.recover(drain_complete_at=21.0 * 3_600.0, rng=rng)
        assert 22.0 < outcome.total_hours < 24.0

    def test_flaky_health_check_retries_then_replaces(self):
        config = LifecycleConfig(health_pass_prob=0.0, replacement_hours=24.0)
        node = NodeLifecycle("gpua001", config)
        node.drain(0.0, "xid79")
        outcome = node.recover(0.0, np.random.default_rng(1))
        assert outcome.replaced
        assert node.state is NodeState.IDLE
        assert outcome.total_hours > 24.0
        states = [t.target for t in node.log]
        assert states.count(NodeState.REBOOTING) == 3  # 2 tries + post-replacement
        assert NodeState.FAILED in states

    def test_single_retry_recovers_without_replacement(self):
        # Fails once, passes on retry.
        class OneFail:
            def __init__(self):
                self.calls = 0

            def random(self):
                self.calls += 1
                return 0.99 if self.calls == 1 else 0.0

        config = LifecycleConfig(health_pass_prob=0.5)
        node = NodeLifecycle("gpua001", config)
        node.drain(0.0, "x")
        outcome = node.recover(0.0, OneFail())
        assert not outcome.replaced
        assert node.state is NodeState.IDLE

    def test_recover_requires_draining(self, rng):
        node = NodeLifecycle("gpua001")
        with pytest.raises(ValueError):
            node.recover(0.0, rng)

    def test_drain_cannot_finish_before_start(self, rng):
        node = NodeLifecycle("gpua001")
        node.drain(1_000.0, "x")
        with pytest.raises(ValueError):
            node.recover(500.0, rng)


class TestAccounting:
    def test_time_in_state(self, rng):
        config = LifecycleConfig(health_pass_prob=1.0)
        node = NodeLifecycle("gpua001", config)
        node.allocate(0.0)
        node.drain(100.0, "x")
        node.recover(200.0, rng)
        assert node.time_in_state(NodeState.ALLOCATED, 10_000.0) == pytest.approx(100.0)
        assert node.time_in_state(NodeState.DRAINING, 10_000.0) == pytest.approx(100.0)

    def test_open_interval_counted(self):
        node = NodeLifecycle("gpua001")
        node.allocate(0.0)
        assert node.time_in_state(NodeState.ALLOCATED, 50.0) == pytest.approx(50.0)
