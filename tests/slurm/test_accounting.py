"""Slurm database queries and persistence round-trip."""

import pytest

from repro.slurm.accounting import NodeEvent, SlurmDatabase
from repro.slurm.job import JobRecord, JobState


def _job(job_id, start, end, state=JobState.COMPLETED, exit_code=0):
    return JobRecord(
        job_id=job_id,
        name="job",
        user="u001",
        submit_time=start - 10.0,
        start_time=start,
        end_time=end,
        n_gpus=1,
        gpus=(("gpua001", "0000:07:00"),),
        partition="a40",
        is_ml=False,
        state=state,
        exit_code=exit_code,
    )


@pytest.fixture()
def database():
    jobs = [
        _job(1, 0.0, 100.0),
        _job(2, 50.0, 200.0, state=JobState.FAILED, exit_code=1),
        _job(3, 300.0, 400.0, state=JobState.NODE_FAIL, exit_code=139),
    ]
    events = [NodeEvent("gpua001", 150.0, 0.5, "xid119")]
    return SlurmDatabase(jobs, events, window_seconds=1_000.0)


class TestQueries:
    def test_jobs_sorted_by_start(self, database):
        starts = [j.start_time for j in database.jobs]
        assert starts == sorted(starts)

    def test_success_rate(self, database):
        assert database.success_rate() == pytest.approx(1 / 3)

    def test_failed_jobs(self, database):
        assert {j.job_id for j in database.failed_jobs()} == {2, 3}

    def test_job_lookup(self, database):
        assert database.job(2).state is JobState.FAILED
        with pytest.raises(KeyError):
            database.job(99)

    def test_jobs_on_gpu(self, database):
        assert len(database.jobs_on_gpu(("gpua001", "0000:07:00"))) == 3
        assert database.jobs_on_gpu(("nope", "x")) == []

    def test_downtime_total(self, database):
        assert database.total_downtime_node_hours() == pytest.approx(0.5)

    def test_elapsed_minutes_vector(self, database):
        minutes = database.elapsed_minutes()
        assert minutes.shape == (3,)
        assert minutes[0] == pytest.approx(100.0 / 60.0)


class TestPersistence:
    def test_save_load_round_trip(self, database, tmp_path):
        path = tmp_path / "slurm.jsonl"
        database.save(path)
        loaded = SlurmDatabase.load(path)
        assert len(loaded) == 3
        assert loaded.window_seconds == 1_000.0
        assert loaded.job(3).state is JobState.NODE_FAIL
        assert loaded.job(3).gpus == (("gpua001", "0000:07:00"),)
        assert len(loaded.node_events) == 1
        assert loaded.node_events[0].reason == "xid119"

    def test_truth_annotation_survives(self, database, tmp_path):
        database.jobs[0].truth_failed_by_xid = 74
        path = tmp_path / "slurm.jsonl"
        database.save(path)
        assert SlurmDatabase.load(path).jobs[0].truth_failed_by_xid == 74

    def test_unknown_row_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "meta", "window_seconds": 1.0}\n{"kind": "???"}\n')
        with pytest.raises(ValueError):
            SlurmDatabase.load(path)


class TestNodeEvent:
    def test_end_time(self):
        event = NodeEvent("n1", 100.0, 2.0, "xid95")
        assert event.end_time == pytest.approx(100.0 + 7200.0)
