"""Error->job coupling: encounters, failures, repair incidents."""

from collections import Counter

import pytest

from repro.faults.calibration import AMPERE_CALIBRATION
from repro.faults.events import ErrorEvent, FaultTrace
from repro.faults.xid import Xid
from repro.slurm.failures import CouplingConfig, FailureCoupler
from repro.slurm.job import JobSpec, JobState
from repro.slurm.scheduler import GpuScheduler

WINDOW = 30 * 86400.0


def _spec(job_id, submit, duration=7200.0, gpus=1, mmu=0, xid13=0):
    return JobSpec(
        job_id=job_id,
        name="job",
        user="u001",
        submit_time=submit,
        requested_gpus=gpus,
        duration=duration,
        partition="a100",
        is_ml=False,
        mmu_emissions=mmu,
        xid13_emissions=xid13,
    )


def _couple(cluster, specs, events, config=None):
    schedule = GpuScheduler(cluster).schedule(specs, WINDOW)
    trace = FaultTrace(list(events), window_seconds=WINDOW)
    coupler = FailureCoupler(AMPERE_CALIBRATION, config or CouplingConfig(seed=3))
    return schedule, coupler.couple(schedule, trace, specs)


class TestEncounterAndFailure:
    def test_gsp_error_on_busy_gpu_kills_job(self, small_cluster):
        specs = [_spec(1, submit=0.0, duration=10_000.0)]
        schedule = GpuScheduler(small_cluster).schedule(specs, WINDOW)
        gpu = schedule.jobs[0].gpus[0]
        error = ErrorEvent(
            time=schedule.jobs[0].start_time + 500.0,
            node_id=gpu[0], pci_bus=gpu[1], xid=Xid.GSP, inoperable=True,
        )
        trace = FaultTrace([error], window_seconds=WINDOW)
        result = FailureCoupler(AMPERE_CALIBRATION, CouplingConfig(seed=3)).couple(
            schedule, trace, specs
        )
        job = result.jobs[0]
        # GSP: Table 2 gives 100% job failure.
        assert job.state is JobState.NODE_FAIL
        assert job.truth_failed_by_xid == int(Xid.GSP)
        # Failure lands inside the 20-second attribution window.
        assert 0.5 <= job.end_time - error.time <= 20.0
        assert result.truth_failure_probability(Xid.GSP) == 1.0

    def test_error_on_idle_gpu_touches_nothing(self, small_cluster):
        specs = [_spec(1, submit=0.0, duration=100.0)]
        schedule = GpuScheduler(small_cluster).schedule(specs, WINDOW)
        gpu = schedule.jobs[0].gpus[0]
        error = ErrorEvent(
            time=schedule.jobs[0].end_time + 5_000.0,
            node_id=gpu[0], pci_bus=gpu[1], xid=Xid.GSP,
        )
        trace = FaultTrace([error], window_seconds=WINDOW)
        result = FailureCoupler(AMPERE_CALIBRATION).couple(schedule, trace, specs)
        assert result.jobs[0].state is JobState.COMPLETED
        assert Xid.GSP not in result.truth_encounters

    def test_mmu_failure_probability_statistics(self, small_cluster):
        # Many single-GPU jobs each encountering one MMU error: the failure
        # fraction should match Table 2's 58.67%.
        specs = [_spec(i, submit=i * 20_000.0, duration=10_000.0) for i in range(1, 301)]
        schedule = GpuScheduler(small_cluster).schedule(specs, 400 * 20_000.0)
        events = []
        for job in schedule.jobs:
            gpu = job.gpus[0]
            events.append(
                ErrorEvent(time=job.start_time + 100.0, node_id=gpu[0],
                           pci_bus=gpu[1], xid=Xid.MMU)
            )
        trace = FaultTrace(events, window_seconds=400 * 20_000.0)
        result = FailureCoupler(AMPERE_CALIBRATION, CouplingConfig(seed=5)).couple(
            schedule, trace, specs
        )
        assert result.truth_failure_probability(Xid.MMU) == pytest.approx(0.5867, abs=0.09)

    def test_long_job_mmu_failures_suppressed(self, small_cluster):
        # >4,000-minute jobs mask MMU errors via checkpoint/retry machinery.
        specs = [
            _spec(i, submit=i * 400_000.0, duration=5_000 * 60.0)
            for i in range(1, 101)
        ]
        window = 102 * 400_000.0
        schedule = GpuScheduler(small_cluster).schedule(specs, window)
        events = []
        for job in schedule.jobs:
            gpu = job.gpus[0]
            events.append(
                ErrorEvent(time=job.start_time + 50.0, node_id=gpu[0],
                           pci_bus=gpu[1], xid=Xid.MMU)
            )
        trace = FaultTrace(events, window_seconds=window)
        result = FailureCoupler(AMPERE_CALIBRATION, CouplingConfig(seed=5)).couple(
            schedule, trace, specs
        )
        assert result.truth_failure_probability(Xid.MMU) < 0.25


class TestWorkloadEmissions:
    def test_buggy_jobs_emit_mmu_on_their_own_gpus(self, small_cluster):
        specs = [_spec(1, submit=0.0, duration=50_000.0, mmu=3)]
        schedule, result = _couple(small_cluster, specs, [])
        mmu_events = result.trace.events_of(Xid.MMU)
        assert mmu_events
        job_gpus = set(schedule.jobs[0].gpus)
        assert all(e.gpu_key in job_gpus for e in mmu_events)
        # Emissions stamped with the owner's pid for the renderer.
        assert result.pids

    def test_budget_roughly_conserved(self, small_cluster):
        specs = [
            _spec(i, submit=i * 60_000.0, duration=50_000.0, mmu=2)
            for i in range(1, 101)
        ]
        window = 102 * 60_000.0
        schedule = GpuScheduler(small_cluster).schedule(specs, window)
        trace = FaultTrace([], window_seconds=window)
        result = FailureCoupler(AMPERE_CALIBRATION, CouplingConfig(seed=7)).couple(
            schedule, trace, specs
        )
        realized = len(result.trace.events_of(Xid.MMU))
        assert realized == pytest.approx(200, rel=0.15)

    def test_user_xid13_rendered_but_not_studied(self, small_cluster):
        specs = [_spec(1, submit=0.0, duration=50_000.0, xid13=2)]
        _, result = _couple(small_cluster, specs, [])
        assert len(result.trace.events_of(Xid.GENERAL_SW)) == 2
        assert Xid.GENERAL_SW not in result.truth_encounters

    def test_dead_jobs_stop_emitting(self, small_cluster):
        # With failure probability ~0.59 per job, many 5-emission jobs die
        # at their first emission; their later emissions must vanish.
        specs = [
            _spec(i, submit=i * 60_000.0, duration=50_000.0, mmu=5)
            for i in range(1, 81)
        ]
        window = 82 * 60_000.0
        schedule = GpuScheduler(small_cluster).schedule(specs, window)
        trace = FaultTrace([], window_seconds=window)
        result = FailureCoupler(AMPERE_CALIBRATION, CouplingConfig(seed=9)).couple(
            schedule, trace, specs
        )
        per_job = Counter()
        for index, event in enumerate(result.trace.events):
            owner = result.pids.get(index)
            if owner is not None:
                per_job[owner] += 1
        failed = {j.job_id for j in result.jobs if j.truth_failed_by_xid == 31}
        for job_id in failed:
            assert per_job[10_000 + job_id % 50_000] == 1


class TestRepairIncidents:
    def test_errors_grouped_into_incidents(self, small_cluster):
        node = small_cluster.gpu_nodes[0]
        gpu = node.gpus[0]
        close = [
            ErrorEvent(time=t, node_id=node.node_id, pci_bus=gpu.pci_bus, xid=Xid.GSP)
            for t in (1_000.0, 1_400.0, 2_000.0)
        ]
        far = ErrorEvent(
            time=500_000.0, node_id=node.node_id, pci_bus=gpu.pci_bus, xid=Xid.GSP
        )
        _, result = _couple(small_cluster, [], close + [far])
        assert len(result.node_events) == 2
        reasons = {e.reason for e in result.node_events}
        assert reasons == {"xid119"}

    def test_user_codes_trigger_no_repair(self, small_cluster):
        node = small_cluster.gpu_nodes[0]
        gpu = node.gpus[0]
        event = ErrorEvent(
            time=1_000.0, node_id=node.node_id, pci_bus=gpu.pci_bus,
            xid=Xid.GENERAL_SW,
        )
        _, result = _couple(small_cluster, [], [event])
        assert result.node_events == []

    def test_incident_durations_positive(self, dataset):
        assert dataset.slurm_db.node_events
        assert all(e.duration_hours > 0 for e in dataset.slurm_db.node_events)
