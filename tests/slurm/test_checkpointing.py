"""Checkpoint/restart cost model."""

import math

import pytest

from repro.slurm.checkpointing import (
    CheckpointConfig,
    expected_overhead,
    optimal_interval,
    simulate_run,
)


class TestAnalytics:
    def test_young_interval(self):
        config = CheckpointConfig(checkpoint_cost_hours=0.1, mtbf_hours=67.0)
        assert optimal_interval(config) == pytest.approx(math.sqrt(2 * 0.1 * 67))

    def test_overhead_minimized_near_optimum(self):
        config = CheckpointConfig()
        tau = optimal_interval(config)
        at_opt = expected_overhead(config, tau)
        assert at_opt < expected_overhead(config, tau / 4)
        assert at_opt < expected_overhead(config, tau * 4)

    def test_forty_percent_regime_exists(self):
        # The paper's "up to 40%" overhead: aggressive checkpointing under
        # a short MTBF.
        config = CheckpointConfig(
            checkpoint_cost_hours=0.5, restore_cost_hours=1.0, mtbf_hours=6.0
        )
        assert expected_overhead(config, optimal_interval(config)) > 0.35

    def test_degenerate_interval_clamped_to_mtbf(self):
        # Checkpoint cost at/above the MTBF: sqrt(2CM) > M is outside the
        # first-order expansion's validity; the interval clamps to the mean
        # failure gap instead of recommending "checkpoint less often than
        # you fail".
        config = CheckpointConfig(checkpoint_cost_hours=3.0, mtbf_hours=2.0)
        assert math.sqrt(2 * 3.0 * 2.0) > 2.0  # unclamped would exceed MTBF
        assert optimal_interval(config) == pytest.approx(2.0)

    def test_clamp_boundary_is_half_mtbf_cost(self):
        # C = M/2 is the crossover: sqrt(2 * M/2 * M) == M exactly.
        config = CheckpointConfig(checkpoint_cost_hours=5.0, mtbf_hours=10.0)
        assert optimal_interval(config) == pytest.approx(10.0)
        below = CheckpointConfig(checkpoint_cost_hours=4.9, mtbf_hours=10.0)
        assert optimal_interval(below) < 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointConfig(mtbf_hours=0.0)
        with pytest.raises(ValueError):
            expected_overhead(CheckpointConfig(), 0.0)


class TestSimulation:
    def test_no_failures_no_overhead_beyond_checkpoints(self):
        config = CheckpointConfig(mtbf_hours=1e9)
        outcome = simulate_run(10.0, config, interval_hours=2.0, seed=1)
        assert outcome.n_failures == 0
        # 10h of work + 4 intermediate checkpoints of 0.1h.
        assert outcome.wall_hours == pytest.approx(10.0 + 4 * 0.1)

    def test_checkpointed_long_job_finishes_with_modest_overhead(self):
        config = CheckpointConfig(mtbf_hours=67.0)
        outcome = simulate_run(200.0, config, seed=2)
        assert outcome.n_failures >= 1
        assert outcome.overhead(200.0) < 0.5

    def test_uncheckpointed_long_job_cannot_finish(self):
        # Useful length many MTBFs: restart-from-zero almost never reaches
        # the end; the simulation hits its wall-clock cap instead.
        config = CheckpointConfig(mtbf_hours=10.0)
        outcome = simulate_run(100.0, config, checkpointing=False, seed=3)
        assert outcome.wall_hours >= 100.0 * 100  # burned the cap

    def test_uncheckpointed_short_job_usually_fine(self):
        config = CheckpointConfig(mtbf_hours=67.0)
        outcome = simulate_run(1.0, config, checkpointing=False, seed=4)
        assert outcome.wall_hours < 5.0

    def test_deterministic_per_seed(self):
        config = CheckpointConfig()
        a = simulate_run(50.0, config, seed=9)
        b = simulate_run(50.0, config, seed=9)
        assert a == b

    def test_simulated_overhead_tracks_analytic(self):
        config = CheckpointConfig(mtbf_hours=30.0)
        tau = optimal_interval(config)
        outcomes = [
            simulate_run(300.0, config, interval_hours=tau, seed=s)
            for s in range(8)
        ]
        mean_overhead = sum(o.overhead(300.0) for o in outcomes) / len(outcomes)
        assert mean_overhead == pytest.approx(
            expected_overhead(config, tau), abs=0.06
        )
