"""GPU scheduler: placement invariants, packing, blackouts, occupancy."""

import numpy as np
import pytest

from repro.slurm.job import JobSpec, JobState
from repro.slurm.scheduler import GpuScheduler, OccupancyIndex, PARTITIONS
from repro.slurm.workload import WorkloadConfig, WorkloadModel

WINDOW = 40 * 86400.0


def _spec(job_id, submit, gpus=1, duration=3600.0, partition="a100"):
    return JobSpec(
        job_id=job_id,
        name="job",
        user="u001",
        submit_time=submit,
        requested_gpus=gpus,
        duration=duration,
        partition=partition,
        is_ml=False,
    )


@pytest.fixture(scope="module")
def schedule(small_cluster):
    model = WorkloadModel(WorkloadConfig(scale=0.002, seed=4))
    specs = model.generate()
    return GpuScheduler(small_cluster).schedule(specs, 855 * 86400.0 * 0.002)


class TestInvariants:
    def test_no_gpu_double_booked(self, schedule):
        per_gpu = {}
        for job in schedule.jobs:
            for gpu in job.gpus:
                per_gpu.setdefault(gpu, []).append((job.start_time, job.end_time))
        for intervals in per_gpu.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-6

    def test_jobs_start_after_submit(self, schedule):
        assert all(j.start_time >= j.submit_time for j in schedule.jobs)

    def test_requested_partition_respected(self, schedule, small_cluster):
        pools = {
            partition: {
                gpu.key
                for node in small_cluster.nodes_of_kind(*kinds)
                for gpu in node.gpus
            }
            for partition, kinds in PARTITIONS.items()
        }
        for job in schedule.jobs:
            assert set(job.gpus) <= pools[job.partition]

    def test_natural_state_carried_through(self, schedule):
        states = {j.state for j in schedule.jobs}
        assert JobState.COMPLETED in states and JobState.FAILED in states


class TestPacking:
    def test_small_jobs_pack_onto_one_node(self, small_cluster):
        specs = [_spec(i, submit=i * 10.0, gpus=4) for i in range(20)]
        schedule = GpuScheduler(small_cluster).schedule(specs, WINDOW)
        packed = sum(1 for j in schedule.jobs if len(j.nodes) == 1)
        assert packed / len(schedule.jobs) > 0.8

    def test_large_jobs_fill_whole_nodes(self, small_cluster):
        # 12 GPUs on 4-way nodes should use ~3 nodes, not 12.
        specs = [_spec(1, submit=0.0, gpus=12)]
        schedule = GpuScheduler(small_cluster).schedule(specs, WINDOW)
        assert len(schedule.jobs[0].nodes) <= 5


class TestQueueing:
    def test_oversubscribed_jobs_wait(self, small_cluster):
        pool = GpuScheduler(small_cluster).pool_size("a100")
        specs = [
            _spec(i, submit=0.0, gpus=pool, duration=7200.0) for i in range(1, 3)
        ]
        schedule = GpuScheduler(small_cluster).schedule(specs, WINDOW)
        starts = sorted(j.start_time for j in schedule.jobs)
        assert starts[1] >= starts[0] + 7200.0 - 1e-6

    def test_requests_beyond_pool_are_clamped(self, small_cluster):
        pool = GpuScheduler(small_cluster).pool_size("a100")
        schedule = GpuScheduler(small_cluster).schedule(
            [_spec(1, 0.0, gpus=pool + 50)], WINDOW
        )
        assert schedule.jobs[0].n_gpus == pool

    def test_job_past_window_dropped(self, small_cluster):
        schedule = GpuScheduler(small_cluster).schedule(
            [_spec(1, submit=WINDOW + 10.0)], WINDOW
        )
        assert not schedule.jobs and schedule.dropped_jobs == 1

    def test_unknown_partition_dropped(self, small_cluster):
        schedule = GpuScheduler(small_cluster).schedule(
            [_spec(1, 0.0, partition="tpu")], WINDOW
        )
        assert schedule.dropped_jobs == 1


class TestBlackouts:
    def test_drained_gpu_gets_no_new_placements(self, small_cluster):
        node = [n for n in small_cluster.gpu_nodes if n.kind.value == "a100_x4"][0]
        blackout_gpu = node.gpus[0].key
        blackouts = {blackout_gpu: [(0.0, WINDOW)]}
        specs = [_spec(i, submit=float(i), gpus=1) for i in range(60)]
        schedule = GpuScheduler(small_cluster, blackouts=blackouts).schedule(
            specs, WINDOW
        )
        placed = {gpu for job in schedule.jobs for gpu in job.gpus}
        assert blackout_gpu not in placed

    def test_blackout_delays_rather_than_drops(self, small_cluster):
        # Black out every a100 GPU for the first day: jobs queue behind it.
        pool = [
            gpu.key
            for node in small_cluster.gpu_nodes
            if node.kind.value in ("a100_x4", "a100_x8")
            for gpu in node.gpus
        ]
        blackouts = {gpu: [(0.0, 86400.0)] for gpu in pool}
        schedule = GpuScheduler(small_cluster, blackouts=blackouts).schedule(
            [_spec(1, submit=0.0)], WINDOW
        )
        assert schedule.jobs[0].start_time >= 86400.0


class TestDrainSubstitution:
    """Drain semantics the what-if engine's spare policy relies on: a job
    already running through a blackout keeps its GPUs, while new placements
    are substituted onto the rest of the pool."""

    def _node_blackout(self, small_cluster, start, end):
        node = [n for n in small_cluster.gpu_nodes if n.kind.value == "a100_x4"][0]
        return node, {gpu.key: [(start, end)] for gpu in node.gpus}

    def test_running_job_keeps_gpus_through_blackout(self, small_cluster):
        # The blackout starts an hour into a four-hour job on that node:
        # Slurm drain does not preempt, so the placement must be identical
        # to the no-blackout schedule and occupancy must show the job
        # running on the drained GPUs mid-blackout.
        node, blackouts = self._node_blackout(small_cluster, 3600.0, WINDOW)
        specs = [_spec(1, submit=0.0, gpus=4, duration=4 * 3600.0)]
        plain = GpuScheduler(small_cluster).schedule(specs, WINDOW)
        drained = GpuScheduler(small_cluster, blackouts=blackouts).schedule(
            specs, WINDOW
        )
        assert drained.jobs[0].gpus == plain.jobs[0].gpus
        job = drained.jobs[0]
        mid_blackout = 2 * 3600.0
        assert all(
            drained.occupancy.job_at(gpu, mid_blackout) == job.job_id
            for gpu in job.gpus
        )

    def test_new_placements_substituted_onto_healthy_nodes(self, small_cluster):
        # While the node drains, single-GPU jobs keep flowing: every one of
        # them must land on a spare (non-drained) GPU even though the
        # drained node's GPUs are the earliest-available by release time.
        node, blackouts = self._node_blackout(small_cluster, 0.0, WINDOW / 2)
        drained_keys = {gpu.key for gpu in node.gpus}
        specs = [_spec(i, submit=float(i), gpus=1) for i in range(40)]
        schedule = GpuScheduler(small_cluster, blackouts=blackouts).schedule(
            specs, WINDOW
        )
        placed_during = {
            gpu
            for job in schedule.jobs
            if job.start_time < WINDOW / 2
            for gpu in job.gpus
        }
        assert not placed_during & drained_keys
        assert schedule.dropped_jobs == 0  # substitution, not rejection

    def test_drained_node_returns_to_service(self, small_cluster):
        # After the drain window closes the node takes placements again —
        # the repaired node rejoining the pool.
        end = 86400.0
        node, blackouts = self._node_blackout(small_cluster, 0.0, end)
        drained_keys = {gpu.key for gpu in node.gpus}
        pool = GpuScheduler(small_cluster).pool_size("a100")
        specs = [
            _spec(i, submit=end + float(i), gpus=pool, duration=3600.0)
            for i in range(1, 3)
        ]
        schedule = GpuScheduler(small_cluster, blackouts=blackouts).schedule(
            specs, WINDOW
        )
        placed = {gpu for job in schedule.jobs for gpu in job.gpus}
        assert drained_keys <= placed

    def test_blackout_on_whole_pool_defers_until_lifted(self, small_cluster):
        # Degenerate spare-pool case: nothing healthy remains, so the job
        # waits for the drain to lift rather than silently landing on a
        # drained GPU.
        pool = [
            gpu.key
            for node in small_cluster.gpu_nodes
            if node.kind.value in ("a100_x4", "a100_x8")
            for gpu in node.gpus
        ]
        lift = 7200.0
        blackouts = {gpu: [(0.0, lift)] for gpu in pool}
        schedule = GpuScheduler(small_cluster, blackouts=blackouts).schedule(
            [_spec(1, submit=0.0, gpus=4)], WINDOW
        )
        assert schedule.jobs[0].start_time >= lift


class TestOccupancyIndex:
    def test_job_at_lookup(self, small_cluster):
        specs = [_spec(1, submit=0.0, duration=1000.0)]
        schedule = GpuScheduler(small_cluster).schedule(specs, WINDOW)
        job = schedule.jobs[0]
        gpu = job.gpus[0]
        occupancy = schedule.occupancy
        assert occupancy.job_at(gpu, job.start_time + 1.0) == job.job_id
        assert occupancy.job_at(gpu, job.end_time + 1.0) is None
        assert occupancy.job_at(("nope", "x"), 0.0) is None

    def test_sample_busy_points_hit_jobs(self, schedule):
        occupancy = schedule.occupancy
        rng = np.random.default_rng(0)
        gpus, times = occupancy.sample_busy(rng, 200)
        assert len(gpus) == 200
        assert all(
            occupancy.job_at(gpu, t) is not None for gpu, t in zip(gpus, times)
        )

    def test_sample_idle_points_miss_jobs(self, schedule):
        occupancy = schedule.occupancy
        rng = np.random.default_rng(0)
        gpus, times = occupancy.sample_idle(rng, 200)
        assert all(occupancy.job_at(gpu, t) is None for gpu, t in zip(gpus, times))

    def test_utilization_between_zero_and_one(self, schedule):
        util = schedule.utilization()
        assert 0.0 < util < 1.0

    def test_empty_index(self):
        occupancy = OccupancyIndex([], window_seconds=100.0)
        rng = np.random.default_rng(0)
        gpus, times = occupancy.sample_busy(rng, 5)
        assert gpus == [] and times.size == 0
        assert occupancy.utilization() == 0.0
