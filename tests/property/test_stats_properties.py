"""Property-based tests for statistics helpers and MTBE invariants."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.coalesce import CoalescedError
from repro.core.mtbe import ErrorStatistics
from repro.util.stats import lognormal_from_mean_p50, summarize_durations
from repro.util.timeutil import format_timestamp, parse_timestamp


@given(
    p50=st.floats(min_value=0.01, max_value=1e4),
    ratio=st.floats(min_value=1.0001, max_value=100.0),
)
@settings(max_examples=200, deadline=None)
def test_lognormal_inversion_exact(p50, ratio):
    mean = p50 * ratio
    params = lognormal_from_mean_p50(mean, p50)
    assert math.isclose(params.mean, mean, rel_tol=1e-9)
    assert math.isclose(params.median, p50, rel_tol=1e-9)


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1,
        max_size=100,
    )
)
@settings(max_examples=150, deadline=None)
def test_duration_summary_ordering(values):
    summary = summarize_durations(values)
    assert min(values) <= summary.p50 <= max(values)
    assert summary.p50 <= summary.p95 + 1e-9
    assert math.isclose(summary.total, sum(values), rel_tol=1e-9, abs_tol=1e-9)


@given(seconds=st.floats(min_value=0.0, max_value=855 * 86_400.0))
@settings(max_examples=300, deadline=None)
def test_timestamp_round_trip(seconds):
    recovered = parse_timestamp(format_timestamp(seconds))
    assert abs(recovered - seconds) <= 0.0011  # millisecond quantization


@st.composite
def error_sets(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    xids = draw(
        st.lists(st.sampled_from([31, 48, 74, 95, 119]), min_size=n, max_size=n)
    )
    times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    return [
        CoalescedError(t, f"n{i % 7}", "p", xid, 0.0, 1)
        for i, (t, xid) in enumerate(zip(times, xids))
    ]


@given(errors=error_sets(), window=st.floats(min_value=1.0, max_value=1e5))
@settings(max_examples=150, deadline=None)
def test_mtbe_count_identity(errors, window):
    """count(xid) * mtbe(xid) == window_hours, for every code present."""
    stats = ErrorStatistics(errors, window_hours=window, n_nodes=5)
    for xid, count in stats.counts().items():
        assert math.isclose(
            stats.mtbe_all_nodes_hours(xid) * count, window, rel_tol=1e-9
        )
    assert math.isclose(
        stats.overall_mtbe_node_hours() * stats.total_count,
        window * 5,
        rel_tol=1e-9,
    )


@given(errors=error_sets())
@settings(max_examples=100, deadline=None)
def test_restriction_partitions_counts(errors):
    """Removing a code's errors removes exactly that code's count."""
    stats = ErrorStatistics(errors, window_hours=100.0, n_nodes=5)
    counts = stats.counts()
    assume(len(counts) >= 2)
    victim = next(iter(counts))
    restricted = stats.restricted(exclude_xids=[victim])
    assert restricted.total_count == stats.total_count - counts[victim]
    assert victim not in restricted.counts()


@given(errors=error_sets())
@settings(max_examples=100, deadline=None)
def test_category_shares_sum_to_one(errors):
    stats = ErrorStatistics(errors, window_hours=100.0, n_nodes=5)
    shares = stats.category_share()
    assert math.isclose(sum(shares.values()), 1.0, rel_tol=1e-9)
