"""Property-based tests on substrate invariants: scheduler, propagation,
overprovisioning, rendering."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import DeltaShape, build_delta_cluster
from repro.core.coalesce import CoalescedError
from repro.core.propagation import PropagationAnalyzer
from repro.core.overprovision import OverprovisionConfig, required_overprovision_analytic
from repro.faults.events import ErrorEvent
from repro.faults.xid import Xid
from repro.slurm.job import JobSpec
from repro.slurm.scheduler import GpuScheduler
from repro.syslog.format import burst_offsets, render_event_lines
from repro.core.parsing import parse_line

_CLUSTER = build_delta_cluster(DeltaShape(1, 2, 2, 1, 1))


@st.composite
def job_specs(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    specs = []
    for i in range(n):
        specs.append(
            JobSpec(
                job_id=i + 1,
                name="job",
                user="u",
                submit_time=draw(st.floats(min_value=0, max_value=1e6)),
                requested_gpus=draw(st.integers(min_value=1, max_value=8)),
                duration=draw(st.floats(min_value=10.0, max_value=1e5)),
                partition=draw(st.sampled_from(["a40", "a100"])),
                is_ml=False,
            )
        )
    return specs


@given(specs=job_specs())
@settings(max_examples=50, deadline=None)
def test_scheduler_never_double_books(specs):
    schedule = GpuScheduler(_CLUSTER).schedule(specs, 2e6)
    per_gpu = {}
    for job in schedule.jobs:
        assert job.start_time >= job.submit_time
        assert len(set(job.gpus)) == job.n_gpus  # no duplicate GPUs in a job
        for gpu in job.gpus:
            per_gpu.setdefault(gpu, []).append((job.start_time, job.end_time))
    for intervals in per_gpu.values():
        intervals.sort()
        for (s1, e1), (s2, _) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-6


@given(specs=job_specs())
@settings(max_examples=30, deadline=None)
def test_scheduler_accounts_every_job(specs):
    schedule = GpuScheduler(_CLUSTER).schedule(specs, 2e6)
    assert len(schedule.jobs) + schedule.dropped_jobs == len(specs)


@st.composite
def error_streams(draw):
    n = draw(st.integers(min_value=1, max_value=80))
    out = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.1, max_value=300.0))
        out.append(
            CoalescedError(
                t,
                draw(st.sampled_from(["n1", "n2"])),
                draw(st.sampled_from(["p1", "p2"])),
                draw(st.sampled_from([31, 74, 95, 119, 122])),
                0.0,
                1,
            )
        )
    return out


@given(errors=error_streams())
@settings(max_examples=60, deadline=None)
def test_propagation_probabilities_normalized(errors):
    """Outgoing intra edges + terminal probability sum to 1 per code."""
    graph = PropagationAnalyzer(errors, window=60.0).analyze()
    for xid in graph.source_counts:
        outgoing = sum(
            stats.count for (src, _), stats in graph.intra_edges.items() if src == xid
        )
        terminal = graph.terminal_counts.get(xid, 0)
        assert outgoing + terminal == graph.source_counts[xid]


@given(errors=error_streams())
@settings(max_examples=60, deadline=None)
def test_nvlink_involvement_accounting(errors):
    involvement = PropagationAnalyzer(errors, window=60.0).nvlink_involvement()
    nvlink_total = sum(1 for e in errors if e.xid == int(Xid.NVLINK))
    assert involvement.total_errors == nvlink_total
    assert (
        involvement.errors_in_all8_incidents
        <= involvement.errors_in_4plus_gpu_incidents
        <= involvement.errors_in_multi_gpu_incidents
        <= involvement.total_errors
    )


@given(
    recovery=st.floats(min_value=1.0, max_value=120.0),
    availability=st.floats(min_value=0.99, max_value=0.9999),
)
@settings(max_examples=80, deadline=None)
def test_overprovision_monotone(recovery, availability):
    base = OverprovisionConfig(recovery_minutes=recovery, availability=availability)
    slower = OverprovisionConfig(
        recovery_minutes=recovery * 2, availability=availability
    )
    assert required_overprovision_analytic(slower) >= required_overprovision_analytic(
        base
    )


@given(persistence=st.floats(min_value=0.0, max_value=5_000.0))
@settings(max_examples=80, deadline=None)
def test_rendered_burst_parses_and_coalesces_whole(persistence):
    """Any event's burst parses back and would coalesce into one error."""
    event = ErrorEvent(
        time=1_000.0, node_id="n1", pci_bus="0000:07:00", xid=Xid.UNCONTAINED,
        persistence=persistence,
    )
    lines = render_event_lines(event, seed=1)
    times = []
    for line in lines:
        record = parse_line(line)
        assert record is not None
        times.append(record.time)
    times.sort()
    assert all(b - a <= 5.0 for a, b in zip(times, times[1:]))
    assert times[-1] - times[0] == (
        0.0 if persistence <= 0 else __import__("pytest").approx(persistence, abs=0.003)
    )


@given(persistence=st.floats(min_value=0.001, max_value=2_000.0), seed=st.integers(0, 10))
@settings(max_examples=100, deadline=None)
def test_burst_offsets_cover_span(persistence, seed):
    rng = np.random.default_rng(seed)
    offsets = burst_offsets(persistence, rng)
    assert offsets[0] == 0.0
    assert abs(offsets[-1] - persistence) < 1e-9
    assert all(b - a < 5.0 for a, b in zip(offsets, offsets[1:]))
