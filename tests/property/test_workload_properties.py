"""Property-based tests on the workload generator and accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slurm.accounting import SlurmDatabase
from repro.slurm.job import JobRecord, JobState
from repro.slurm.workload import SIZE_BUCKETS, WorkloadConfig, WorkloadModel


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_workload_specs_well_formed(seed):
    model = WorkloadModel(WorkloadConfig(scale=0.001, seed=seed))
    specs = model.generate()
    assert specs
    window = model.window_seconds
    for spec in specs:
        assert 0.0 <= spec.submit_time < window
        assert spec.duration >= 10.0
        assert 1 <= spec.requested_gpus <= 400
        assert spec.partition in ("a40", "a100")
        assert spec.mmu_emissions >= 0
    ids = [spec.job_id for spec in specs]
    assert len(set(ids)) == len(ids)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_every_job_lands_in_exactly_one_bucket(seed):
    model = WorkloadModel(WorkloadConfig(scale=0.001, seed=seed))
    for spec in model.generate():
        matches = [
            b for b in SIZE_BUCKETS
            if b.min_gpus <= spec.requested_gpus <= b.max_gpus
        ]
        assert len(matches) == 1, spec.requested_gpus


@st.composite
def job_records(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    jobs = []
    for i in range(n):
        start = draw(st.floats(min_value=0, max_value=1e6))
        jobs.append(
            JobRecord(
                job_id=i + 1,
                name=draw(st.sampled_from(["train_gnn", "namd_run"])),
                user="u1",
                submit_time=start,
                start_time=start,
                end_time=start + draw(st.floats(min_value=1.0, max_value=1e5)),
                n_gpus=1,
                gpus=(("n1", "0000:07:00"),),
                partition="a40",
                is_ml=False,
                state=draw(st.sampled_from(list(JobState))),
                exit_code=draw(st.sampled_from([0, 1, 139])),
            )
        )
    return jobs


@given(jobs=job_records())
@settings(max_examples=60, deadline=None)
def test_database_round_trip_preserves_everything(jobs, tmp_path_factory):
    path = tmp_path_factory.mktemp("db") / "db.jsonl"
    database = SlurmDatabase(jobs, window_seconds=1e6)
    database.save(path)
    loaded = SlurmDatabase.load(path)
    assert len(loaded) == len(database)
    for a, b in zip(database.jobs, loaded.jobs):
        assert (a.job_id, a.start_time, a.end_time, a.state, a.exit_code) == (
            b.job_id, b.start_time, b.end_time, b.state, b.exit_code
        )
    assert loaded.success_rate() == database.success_rate()


@given(jobs=job_records())
@settings(max_examples=60, deadline=None)
def test_success_partition(jobs):
    database = SlurmDatabase(jobs, window_seconds=1e6)
    assert len(database.completed_jobs()) + len(database.failed_jobs()) == len(jobs)
