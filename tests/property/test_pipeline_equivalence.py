"""Property: batch and streaming Coalesce stages agree on writer-rendered
streams, including records that arrive late but within the window.

End-to-end through the real artifact boundary: randomized event sets are
rendered by the syslog writer into per-node files, extracted through the
pipeline's k-way time merge, then perturbed with bounded lateness (what a
flushed buffer or slow forwarder does to a real collection pipeline).
Batch ``coalesce_errors`` over the records and a drained
:class:`StreamingCoalescer` must produce identical ``CoalescedError``
sequences either way.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coalesce import DEFAULT_WINDOW_SECONDS, coalesce_errors
from repro.core.streaming import StreamingCoalescer
from repro.faults.events import ErrorEvent
from repro.faults.xid import Xid
from repro.pipeline import FileSetSource, extract_records
from repro.syslog.format import render_event_lines
from repro.syslog.writer import write_node_logs

NODES = ("gpua001", "gpua002")
BUSES = ("0000:07:00", "0000:47:00")
XIDS = (Xid.MMU, Xid.FALLEN_OFF_BUS, Xid.GSP)


@st.composite
def rendered_chains(draw):
    """Randomized events -> writer-rendered node logs -> merged records."""
    n_events = draw(st.integers(min_value=1, max_value=18))
    t = 0.0
    events = []
    for _ in range(n_events):
        t += draw(st.floats(min_value=0.5, max_value=400.0))
        events.append(
            ErrorEvent(
                time=round(t, 3),  # timestamps render at ms precision
                node_id=draw(st.sampled_from(NODES)),
                pci_bus=draw(st.sampled_from(BUSES)),
                xid=draw(st.sampled_from(XIDS)),
                persistence=draw(
                    st.one_of(st.just(0.0), st.floats(min_value=0.0, max_value=45.0))
                ),
            )
        )
    lines = [line for event in events for line in render_event_lines(event, seed=5)]
    with tempfile.TemporaryDirectory() as tmp:
        write_node_logs(lines, Path(tmp))
        records = extract_records(FileSetSource(Path(tmp)))
    swaps = draw(st.sets(st.integers(min_value=0, max_value=max(0, len(records) - 2))))
    return records, _perturb(records, swaps)


def _group_key(r):
    return (r.node_id, r.pci_bus, r.xid, r.message)


def _perturb(records, swaps):
    """Swap adjacent records at the requested positions when the swap is a
    valid late arrival: the gap fits in the window, and for same-group pairs
    the advanced record must not jump a bridge (its gap from the group's
    previous record must still extend — or jointly reopen — the run).
    """
    perturbed = list(records)
    last_by_key = {}
    i = 0
    while i < len(perturbed):
        a = perturbed[i]
        if i in swaps and i + 1 < len(perturbed):
            b = perturbed[i + 1]
            ok = b.time - a.time <= DEFAULT_WINDOW_SECONDS
            if ok and _group_key(a) == _group_key(b):
                prev = last_by_key.get(_group_key(a))
                ok = (
                    prev is None
                    or b.time - prev <= DEFAULT_WINDOW_SECONDS
                    or a.time - prev > DEFAULT_WINDOW_SECONDS
                )
            if ok:
                perturbed[i], perturbed[i + 1] = b, a
                last_by_key[_group_key(b)] = b.time
                last_by_key[_group_key(a)] = max(
                    a.time, last_by_key.get(_group_key(a), a.time)
                )
                i += 2
                continue
        last_by_key[_group_key(a)] = a.time
        i += 1
    return perturbed


def _keys(errors):
    return [
        (e.time, e.node_id, e.pci_bus, e.xid, round(e.persistence, 9), e.n_raw)
        for e in errors
    ]


@given(streams=rendered_chains())
@settings(max_examples=30, deadline=None)
def test_batch_equals_drained_streaming_on_rendered_streams(streams):
    records, perturbed = streams
    streaming = StreamingCoalescer()
    for record in perturbed:
        streaming.feed(record)
    assert _keys(streaming.flush()) == _keys(coalesce_errors(records))


@given(streams=rendered_chains())
@settings(max_examples=15, deadline=None)
def test_persistence_recovered_from_rendered_bursts(streams):
    records, _ = streams
    # Every coalesced error's persistence equals some rendered burst span:
    # positive-persistence events round-trip through text within ms jitter.
    for error in coalesce_errors(records):
        assert error.persistence >= 0.0
        assert error.n_raw >= 1
