"""Property-based tests for the mechanistic substrates (SECDED, CRC, remap)."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.memory.remap import RemapOutcome, RowRemapper
from repro.memory.secded import (
    CODEWORD_BITS,
    DATA_BITS,
    DecodeStatus,
    decode,
    encode,
    flip_bits,
)
from repro.nvlink.crc import CRC24, crc_bytes

words = st.integers(min_value=0, max_value=(1 << DATA_BITS) - 1)
positions = st.integers(min_value=0, max_value=CODEWORD_BITS - 1)


@given(data=words)
@settings(max_examples=300, deadline=None)
def test_secded_round_trip(data):
    result = decode(encode(data))
    assert result.status is DecodeStatus.OK
    assert result.data == data


@given(data=words, position=positions)
@settings(max_examples=300, deadline=None)
def test_secded_corrects_any_single_flip(data, position):
    result = decode(flip_bits(encode(data), [position]))
    assert result.status is DecodeStatus.CORRECTED_SBE
    assert result.data == data


@given(data=words, a=positions, b=positions)
@settings(max_examples=300, deadline=None)
def test_secded_detects_any_double_flip(data, a, b):
    assume(a != b)
    result = decode(flip_bits(encode(data), [a, b]))
    assert result.status is DecodeStatus.DETECTED_DBE


@given(data=words, position=positions)
@settings(max_examples=200, deadline=None)
def test_flip_is_involutive(data, position):
    codeword = encode(data)
    assert flip_bits(flip_bits(codeword, [position]), [position]) == codeword


@given(payload=st.binary(min_size=1, max_size=128), position=st.integers(min_value=0))
@settings(max_examples=300, deadline=None)
def test_crc_catches_any_single_bit_flip(payload, position):
    position %= len(payload) * 8
    corrupted = bytearray(payload)
    corrupted[position // 8] ^= 1 << (position % 8)
    assert crc_bytes(bytes(corrupted), CRC24) != crc_bytes(payload, CRC24)


@given(payload=st.binary(min_size=1, max_size=128))
@settings(max_examples=200, deadline=None)
def test_crc_deterministic(payload):
    assert crc_bytes(payload) == crc_bytes(payload)


@st.composite
def remap_requests(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    return [
        (draw(st.integers(min_value=0, max_value=3)),
         draw(st.integers(min_value=0, max_value=30)))
        for _ in range(n)
    ]


@given(requests=remap_requests())
@settings(max_examples=200, deadline=None)
def test_remapper_accounting_invariants(requests):
    remapper = RowRemapper(n_banks=4, spares_per_bank=3, max_total_remaps=10)
    successes = 0
    for address in requests:
        outcome = remapper.request_remap(address)
        if outcome is RemapOutcome.REMAPPED:
            successes += 1
        # Spares never go negative; totals never exceed the budget.
        for bank in range(4):
            assert 0 <= remapper.spares_left(bank) <= 3
        assert remapper.total_remapped <= 10
    assert remapper.total_remapped == successes
    # Re-requesting every address is a no-op.
    before = remapper.total_remapped
    for address in requests:
        assert remapper.request_remap(address) in (
            RemapOutcome.ALREADY_REMAPPED, RemapOutcome.FAILED
        )
    assert remapper.total_remapped == before
