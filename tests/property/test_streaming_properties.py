"""Property-based equivalence: streaming coalescer == batch Algorithm 1."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coalesce import CoalesceConfig, coalesce_errors
from repro.core.parsing import RawXidRecord
from repro.core.streaming import StreamingCoalescer


@st.composite
def record_streams(draw):
    """Time-ordered records over a few GPUs/codes with mixed gap scales."""
    n = draw(st.integers(min_value=1, max_value=120))
    t = 0.0
    records = []
    for _ in range(n):
        t += draw(
            st.one_of(
                st.floats(min_value=0.01, max_value=4.9),  # burst gaps
                st.floats(min_value=5.1, max_value=500.0),  # run breaks
            )
        )
        records.append(
            RawXidRecord(
                time=t,
                node_id=draw(st.sampled_from(["n1", "n2"])),
                pci_bus=draw(st.sampled_from(["p1", "p2"])),
                xid=draw(st.sampled_from([31, 95, 119])),
                message="m",
            )
        )
    return records


@given(records=record_streams())
@settings(max_examples=150, deadline=None)
def test_streaming_equals_batch(records):
    streaming = StreamingCoalescer()
    for record in records:
        streaming.feed(record)
    online = streaming.flush()
    batch = coalesce_errors(records)
    assert [
        (e.time, e.node_id, e.pci_bus, e.xid, round(e.persistence, 9), e.n_raw)
        for e in online
    ] == [
        (e.time, e.node_id, e.pci_bus, e.xid, round(e.persistence, 9), e.n_raw)
        for e in batch
    ]


@given(records=record_streams(), cutoff=st.floats(min_value=10.0, max_value=200.0))
@settings(max_examples=100, deadline=None)
def test_streaming_respects_cutoff(records, cutoff):
    streaming = StreamingCoalescer(max_persistence=cutoff)
    for record in records:
        streaming.feed(record)
    for error in streaming.flush():
        assert error.persistence <= cutoff + 1e-9


@given(records=record_streams(), threshold=st.floats(min_value=1.0, max_value=300.0))
@settings(max_examples=100, deadline=None)
def test_alarms_fire_exactly_for_long_open_runs(records, threshold):
    """An alarm exists iff some run's final persistence crossed the
    threshold while it accumulated (one alarm per such run)."""
    streaming = StreamingCoalescer(alarm_after_seconds=threshold)
    for record in records:
        streaming.feed(record)
    errors = streaming.flush()
    long_runs = sum(1 for e in errors if e.persistence >= threshold)
    assert len(streaming.alarms) == long_runs
