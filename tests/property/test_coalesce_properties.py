"""Property-based tests for Algorithm 1 (coalescing)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coalesce import CoalesceConfig, coalesce_errors
from repro.core.parsing import RawXidRecord


def _records(times, msg="m", node="n1", pci="p", xid=95):
    return [
        RawXidRecord(time=float(t), node_id=node, pci_bus=pci, xid=xid, message=msg)
        for t in times
    ]


times_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


@given(times=times_strategy)
@settings(max_examples=150, deadline=None)
def test_raw_lines_conserved(times):
    """Every raw record lands in exactly one coalesced error."""
    errors = coalesce_errors(_records(times))
    assert sum(e.n_raw for e in errors) == len(times)


@given(times=times_strategy)
@settings(max_examples=150, deadline=None)
def test_output_bounded_by_input(times):
    errors = coalesce_errors(_records(times))
    assert 1 <= len(errors) <= len(times)


@given(times=times_strategy)
@settings(max_examples=150, deadline=None)
def test_persistence_nonnegative_and_bounded(times):
    config = CoalesceConfig()
    for error in coalesce_errors(_records(times), config):
        assert 0.0 <= error.persistence <= config.max_persistence + 1e-6


@given(times=times_strategy)
@settings(max_examples=150, deadline=None)
def test_runs_separated_by_more_than_window(times):
    """Consecutive coalesced errors of one group are > window apart —
    otherwise they would have been merged."""
    config = CoalesceConfig()
    errors = sorted(coalesce_errors(_records(times), config), key=lambda e: e.time)
    for a, b in zip(errors, errors[1:]):
        gap = b.time - (a.time + a.persistence)
        # Gap rule may be violated only when the cut-off forced a split.
        if a.persistence < config.max_persistence - 1e-9:
            assert gap > config.window_seconds

    spans = [(e.time, e.end_time) for e in errors]
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert s2 >= e1  # runs never overlap


@given(times=times_strategy, shift=st.floats(min_value=0.0, max_value=1e5))
@settings(max_examples=80, deadline=None)
def test_time_shift_equivariance(times, shift):
    """Shifting all timestamps shifts errors without changing structure."""
    base = coalesce_errors(_records(times))
    shifted = coalesce_errors(_records([t + shift for t in times]))
    assert len(base) == len(shifted)
    for a, b in zip(base, shifted):
        assert abs((b.time - a.time) - shift) < 1e-6
        assert abs(b.persistence - a.persistence) < 1e-6
        assert a.n_raw == b.n_raw


@given(times=times_strategy)
@settings(max_examples=80, deadline=None)
def test_permutation_invariance(times):
    forward = coalesce_errors(_records(times))
    backward = coalesce_errors(_records(list(reversed(times))))
    assert [(e.time, e.n_raw) for e in forward] == [
        (e.time, e.n_raw) for e in backward
    ]


@given(
    times=times_strategy,
    window=st.floats(min_value=0.5, max_value=100.0),
)
@settings(max_examples=80, deadline=None)
def test_wider_window_never_increases_count(times, window):
    narrow = coalesce_errors(_records(times), CoalesceConfig(window_seconds=window))
    wide = coalesce_errors(
        _records(times), CoalesceConfig(window_seconds=window * 2)
    )
    assert len(wide) <= len(narrow)


@given(
    times_a=times_strategy,
    times_b=times_strategy,
)
@settings(max_examples=60, deadline=None)
def test_groups_independent(times_a, times_b):
    """Records of different GPUs coalesce independently."""
    merged = coalesce_errors(
        _records(times_a, pci="p1") + _records(times_b, pci="p2")
    )
    separate = coalesce_errors(_records(times_a, pci="p1")) + coalesce_errors(
        _records(times_b, pci="p2")
    )
    assert len(merged) == len(separate)
