"""The typed artifact model: tolerances, round-trips, validation, digests."""

import dataclasses
import json
import math

import pytest

from repro.results import (
    ExperimentResult,
    Metric,
    PaperExpectation,
    ResultTable,
    RunManifest,
    SCHEMA_VERSION,
    Tolerance,
    config_digest,
    validate_result_dict,
)


def _sample_result() -> ExperimentResult:
    expectation = PaperExpectation(
        value=67.0, tolerance=Tolerance(rel=0.15), source="Table 1"
    )
    return ExperimentResult(
        experiment_id="table1",
        paper_artifact="Table 1",
        title="Table 1 - sample",
        renderer="table1",
        metrics=(
            Metric(name="mtbe", value=66.3, unit="node-hours",
                   expectation=expectation, support=3190),
            Metric(name="flag", value=True),
            Metric(name="label", value="ampere"),
        ),
        tables=(
            ResultTable(title="T", headers=("a", "b"),
                        rows=((1, 2.5), (3, float("nan")))),
        ),
        manifest=RunManifest(run_id="table1@x", seed=7, scale=0.05,
                             config_hashes={"coalesce": "abc"},
                             package_version="1.1.0"),
    )


class TestTolerance:
    def test_two_sided_band(self):
        lo, hi = Tolerance(rel=0.1).bounds(100.0)
        assert lo == pytest.approx(90.0) and hi == pytest.approx(110.0)

    def test_absolute_slack_wins_when_larger(self):
        lo, hi = Tolerance(rel=0.01, abs=5.0).bounds(100.0)
        assert lo == pytest.approx(95.0) and hi == pytest.approx(105.0)

    def test_relax_widens_the_band(self):
        lo, hi = Tolerance(rel=0.1).bounds(100.0, relax=2.0)
        assert lo == pytest.approx(80.0) and hi == pytest.approx(120.0)

    def test_min_kind_has_no_upper_bound(self):
        lo, hi = Tolerance(rel=0.2, kind="min").bounds(30.0)
        assert lo == pytest.approx(24.0) and hi is None

    def test_max_kind_has_no_lower_bound(self):
        lo, hi = Tolerance(rel=0.2, kind="max").bounds(30.0)
        assert lo is None and hi == pytest.approx(36.0)


class TestPaperExpectation:
    def test_scaled_multiplies_count_like_values(self):
        e = PaperExpectation(value=70.0, tolerance=Tolerance(rel=0.35),
                             source="S6", scales_with_window=True)
        scaled = e.scaled(0.5)
        assert scaled.value == pytest.approx(35.0)
        assert not scaled.scales_with_window  # idempotent from here on

    def test_scaled_leaves_rates_alone(self):
        e = PaperExpectation(value=0.99, tolerance=Tolerance(abs=0.05),
                             source="F5")
        assert e.scaled(0.5).value == pytest.approx(0.99)


class TestMetric:
    def test_numeric_accepts_bool_and_numbers(self):
        assert Metric(name="x", value=True).numeric == 1.0
        assert Metric(name="x", value=3).numeric == 3.0

    def test_numeric_rejects_strings(self):
        with pytest.raises(TypeError):
            Metric(name="x", value="ampere").numeric


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        result = _sample_result()
        back = ExperimentResult.from_json(result.render_json())
        assert back.experiment_id == result.experiment_id
        assert back.metric("mtbe").expectation.value == 67.0
        assert back.metric("mtbe").support == 3190
        assert back.metric("flag").value is True
        assert back.metric("label").value == "ampere"
        assert back.manifest.config_hashes == {"coalesce": "abc"}

    def test_round_trip_preserves_cell_types(self):
        back = ExperimentResult.from_json(_sample_result().render_json())
        row = back.tables[0].rows[0]
        assert isinstance(row[0], int) and isinstance(row[1], float)
        assert math.isnan(back.tables[0].rows[1][1])

    def test_schema_version_is_stamped(self):
        assert _sample_result().to_dict()["schema"] == SCHEMA_VERSION


class TestValidation:
    def test_valid_dict_has_no_problems(self):
        assert validate_result_dict(_sample_result().to_dict()) == []

    def test_missing_fields_are_reported(self):
        data = _sample_result().to_dict()
        del data["metrics"]
        del data["experiment_id"]
        problems = validate_result_dict(data)
        assert any("metrics" in p for p in problems)
        assert any("experiment_id" in p for p in problems)

    def test_ragged_table_is_reported(self):
        data = json.loads(_sample_result().render_json())
        data["tables"][0]["rows"][0] = [1]
        assert validate_result_dict(data)

    def test_from_dict_raises_on_invalid(self):
        with pytest.raises(ValueError):
            ExperimentResult.from_dict({"schema": SCHEMA_VERSION})


class TestResultAccessors:
    def test_value_and_values(self):
        result = _sample_result()
        assert result.value("mtbe") == pytest.approx(66.3)
        assert result.values["flag"] is True

    def test_expected_metrics_filters_annotated_ones(self):
        names = [m.name for m in _sample_result().expected_metrics()]
        assert names == ["mtbe"]

    def test_table_prefix_lookup(self):
        assert _sample_result().table("T").headers == ("a", "b")
        with pytest.raises(KeyError):
            _sample_result().table("missing")


class TestConfigDigest:
    def test_stable_across_key_order(self):
        assert config_digest({"b": 1, "a": 2}) == config_digest({"a": 2, "b": 1})

    def test_dataclasses_digest_like_their_dicts(self):
        @dataclasses.dataclass
        class Cfg:
            x: int = 1

        assert config_digest(Cfg()) == config_digest({"x": 1})

    def test_different_configs_differ(self):
        assert config_digest({"x": 1}) != config_digest({"x": 2})
