"""The paper-fidelity gate: pass/fail/skip semantics and miscalibration."""

import dataclasses

import pytest

from repro.results import (
    ExperimentResult,
    Metric,
    PaperExpectation,
    Tolerance,
    verify_result,
    verify_results,
)
from repro.results.verify import FAIL, PASS, SKIP


def _result(*metrics: Metric) -> ExperimentResult:
    return ExperimentResult(
        experiment_id="table1",
        paper_artifact="Table 1",
        title="t",
        renderer="table1",
        metrics=metrics,
    )


def _metric(value, expected=67.0, rel=0.15, support=None, kind="two-sided"):
    return Metric(
        name="mtbe",
        value=value,
        support=support,
        expectation=PaperExpectation(
            value=expected, tolerance=Tolerance(rel=rel, kind=kind), source="T1"
        ),
    )


class TestVerifyResult:
    def test_in_band_passes(self):
        (check,) = verify_result(_result(_metric(66.3)))
        assert check.status == PASS

    def test_out_of_band_fails(self):
        (check,) = verify_result(_result(_metric(120.0)))
        assert check.status == FAIL
        assert check.upper is not None and check.measured > check.upper

    def test_nan_fails(self):
        (check,) = verify_result(_result(_metric(float("nan"))))
        assert check.status == FAIL
        assert "NaN" in check.reason

    def test_low_support_skips_instead_of_failing(self):
        (check,) = verify_result(_result(_metric(120.0, support=3)))
        assert check.status == SKIP
        assert "support" in check.reason

    def test_min_support_is_tunable(self):
        (check,) = verify_result(
            _result(_metric(66.3, support=3)), min_support=2
        )
        assert check.status == PASS

    def test_tolerance_scale_widens_bands(self):
        assert verify_result(_result(_metric(90.0)))[0].status == FAIL
        relaxed = verify_result(_result(_metric(90.0)), tolerance_scale=3.0)
        assert relaxed[0].status == PASS

    def test_min_kind_only_bounds_below(self):
        assert verify_result(
            _result(_metric(500.0, expected=30.0, rel=0.2, kind="min"))
        )[0].status == PASS
        assert verify_result(
            _result(_metric(10.0, expected=30.0, rel=0.2, kind="min"))
        )[0].status == FAIL

    def test_unannotated_metrics_are_ignored(self):
        assert verify_result(_result(Metric(name="plain", value=1))) == []


class TestVerifyResults:
    def test_aggregates_and_summarizes(self):
        report = verify_results(
            [_result(_metric(66.3)), _result(_metric(200.0))]
        )
        assert report.n_pass == 1 and report.n_fail == 1 and not report.ok
        assert len(report.failures()) == 1
        table = report.render_table()
        assert "Paper-fidelity verification" in table
        assert "1 passed, 1 failed" in table

    def test_all_green_report_is_ok(self):
        report = verify_results([_result(_metric(66.3))])
        assert report.ok and report.n_fail == 0


class TestInjectedMiscalibration:
    """A deliberately miscalibrated experiment must trip the gate."""

    def test_real_experiment_with_corrupted_metric_fails(self, study):
        from repro.experiments import run_experiment

        result = run_experiment("table1", study, scale=0.02, seed=1234)
        assert verify_results([result], tolerance_scale=3.0).ok

        # inject a miscalibration: the measured MTBE drifts far off-paper
        corrupted = dataclasses.replace(
            result,
            metrics=tuple(
                dataclasses.replace(m, value=m.numeric * 50.0)
                if m.name == "overall_mtbe_node_hours" else m
                for m in result.metrics
            ),
        )
        report = verify_results([corrupted], tolerance_scale=3.0)
        assert not report.ok
        assert any(c.metric == "overall_mtbe_node_hours"
                   for c in report.failures())
