"""Real-world log-format adapters."""

import datetime as dt

import pytest

from repro.adapters import (
    parse_dmesg_line,
    parse_dmesg_lines,
    parse_journal_line,
    parse_journal_lines,
    parse_rfc3164_line,
    parse_rfc3164_lines,
)
from repro.core.coalesce import coalesce_errors

BODY = "NVRM: Xid (PCI:0000:C7:00): 119, pid=8821, Timeout after 6s of waiting"


class TestDmesg:
    def test_parses_uptime_and_fields(self):
        record = parse_dmesg_line(
            f"[  123.456789] {BODY}", node_id="gpub042", boot_epoch=1_000.0
        )
        assert record is not None
        assert record.time == pytest.approx(1_123.456789)
        assert record.node_id == "gpub042"
        assert record.xid == 119
        assert record.pid == 8821

    def test_non_xid_rejected(self):
        assert parse_dmesg_line("[  1.0] usb 1-1: new device", node_id="n") is None

    def test_bulk(self):
        lines = [f"[ {t}.000000] {BODY}" for t in (1, 2, 3)] + ["[ 4.0] noise"]
        records = parse_dmesg_lines(lines, node_id="n1")
        assert len(records) == 3
        assert [r.time for r in records] == [1.0, 2.0, 3.0]

    def test_feeds_the_pipeline(self):
        lines = [f"[ {t}.000000] {BODY}" for t in (10, 12, 14, 300)]
        errors = coalesce_errors(parse_dmesg_lines(lines, node_id="n1"))
        assert len(errors) == 2  # burst of 3 + isolated 1


class TestJournal:
    def test_utc_offset_honoured(self):
        base = parse_journal_line(f"2022-01-01T12:00:00+0000 gpua001 kernel: {BODY}")
        shifted = parse_journal_line(f"2022-01-01T14:00:00+0200 gpua001 kernel: {BODY}")
        assert base is not None and shifted is not None
        assert base.time == shifted.time

    def test_zulu_suffix(self):
        record = parse_journal_line(f"2022-01-01T00:00:05Z gpua001 kernel: {BODY}")
        assert record is not None and record.time == 5.0

    def test_no_offset(self):
        record = parse_journal_line(f"2022-01-01T00:00:05 gpua001 kernel: {BODY}")
        assert record is not None and record.time == 5.0

    def test_custom_epoch(self):
        epoch = dt.datetime(2024, 8, 1)
        record = parse_journal_line(
            f"2024-08-01T00:01:00+0000 gh001 kernel: {BODY}", epoch=epoch
        )
        assert record is not None and record.time == 60.0

    def test_bulk_filters_noise(self):
        lines = [
            f"2022-01-01T00:00:01+0000 n1 kernel: {BODY}",
            "2022-01-01T00:00:02+0000 n1 systemd[1]: Started session",
        ]
        assert len(parse_journal_lines(lines)) == 1


class TestRfc3164:
    def test_basic_line(self):
        record = parse_rfc3164_line(f"May  1 12:00:00 gpua001 kernel: {BODY}", year=2022)
        assert record is not None
        assert record.node_id == "gpua001"
        expected = (dt.datetime(2022, 5, 1, 12) - dt.datetime(2022, 1, 1)).total_seconds()
        assert record.time == expected

    def test_year_wrap_across_new_year(self):
        lines = [
            f"Dec 31 23:59:00 n1 kernel: {BODY}",
            f"Jan  1 00:01:00 n1 kernel: {BODY}",
        ]
        records = parse_rfc3164_lines(lines, year=2022)
        assert len(records) == 2
        assert records[1].time - records[0].time == pytest.approx(120.0)

    def test_unknown_month_rejected(self):
        assert parse_rfc3164_line(f"Foo  1 12:00:00 n1 kernel: {BODY}", year=2022) is None


class TestCrossFormatAgreement:
    def test_same_event_same_record_across_formats(self):
        native_time = (dt.datetime(2022, 3, 4, 5, 6, 7) - dt.datetime(2022, 1, 1)).total_seconds()
        journal = parse_journal_line(f"2022-03-04T05:06:07+0000 n1 kernel: {BODY}")
        rfc = parse_rfc3164_line(f"Mar  4 05:06:07 n1 kernel: {BODY}", year=2022)
        dmesg = parse_dmesg_line(f"[ 7.000000] {BODY}", node_id="n1",
                                 boot_epoch=native_time - 7.0)
        assert journal.time == rfc.time == pytest.approx(dmesg.time)
        assert journal.xid == rfc.xid == dmesg.xid == 119
        assert journal.message == rfc.message == dmesg.message
