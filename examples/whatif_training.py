#!/usr/bin/env python3
"""What does the measured failure process cost a long training run?

A walkthrough of the what-if engine: one scenario (fleet + job), all four
recovery policies, a Monte-Carlo sweep each, and a side-by-side verdict —
the forward-looking version of the paper's Section 5 recovery discussion.

Usage::

    PYTHONPATH=src python examples/whatif_training.py
    PYTHONPATH=src python examples/whatif_training.py \
        --scenario h100-512 --replicas 32 --workers 4
"""

import argparse

from repro.sim import SweepConfig, list_scenarios, run_sweep
from repro.util.tables import Table

POLICIES = (
    ("none", "no checkpointing (restart from zero)"),
    ("ckpt", "checkpoint/restart, Young/Daly interval"),
    ("spare:4", "checkpointing + 4 hot spares (evicts bad parts)"),
    ("elastic", "checkpointing + elastic shrink/regrow"),
)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scenario", default="a100-256",
                        help="one of: " + ", ".join(n for n, _ in list_scenarios()))
    parser.add_argument("--replicas", type=int, default=16)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--useful-hours", type=float, default=168.0,
                        help="a week of useful work by default")
    args = parser.parse_args()

    print(f"scenario {args.scenario}, {args.useful_hours:.0f} h useful work, "
          f"{args.replicas} replicas per policy\n")

    table = Table(
        f"Recovery policies on {args.scenario}",
        ("policy", "goodput", "ettr h", "rework h", "repair-wait h",
         "wasted GPU-h", "done"),
    )
    for spec, blurb in POLICIES:
        result = run_sweep(
            SweepConfig(
                scenario=args.scenario,
                policy=spec,
                replicas=args.replicas,
                seed=args.seed,
                useful_hours=args.useful_hours,
            ),
            workers=args.workers,
        )
        a = result.aggregate
        table.add_row(
            spec,
            f"{a['goodput']['mean']:.3f} ± {a['goodput']['ci95']:.3f}",
            f"{a['ettr_hours']['mean']:.2f}",
            f"{a['rework_hours']['mean']:.1f}",
            f"{a['repair_wait_hours']['mean']:.1f}",
            f"{a['wasted_gpu_hours']['mean']:,.0f}",
            f"{a['completed_fraction']:.2f}",
        )
        print(f"  {spec:<10} {blurb}")
    print()
    print(table.render())
    print(
        "\nReading the table: 'none' shows why checkpointing is not optional"
        "\nat this scale; plain 'ckpt' still blocks on node repairs and keeps"
        "\nany defective part it drew; 'spare' pays a small swap cost to evict"
        "\nbad parts permanently (the paper's drain-and-replace lever); and"
        "\n'elastic' trades peak throughput for never standing still."
    )


if __name__ == "__main__":
    main()
