#!/usr/bin/env python3
"""Incident forensics: replay the paper's three narrated incidents.

Each incident (Figure 1 and Figure 8) is reconstructed as a miniature
observable dataset; the pipeline then re-derives the story from raw log
text and the job database: which XID struck, which job died, what the
recovery cost was.

Usage::

    python examples/incident_forensics.py
"""

from repro.core.coalesce import coalesce_errors
from repro.core.jobimpact import JobImpactAnalyzer
from repro.core.parsing import parse_syslog
from repro.core.propagation import PropagationAnalyzer
from repro.datasets import gsp_incident, nvlink_multinode_incident, pmu_mmu_incident
from repro.faults.xid import XID_CATALOG, Xid
from repro.util.timeutil import format_duration


def investigate(name: str, incident) -> None:
    print("=" * 72)
    print(name)
    print("=" * 72)
    print(f"Narrative: {incident.narrative}")
    print()

    lines = incident.log_lines()
    print(f"Raw syslog ({len(lines)} lines, first 3):")
    for line in lines[:3]:
        print(f"  {line}")
    print()

    errors = coalesce_errors(parse_syslog(lines))
    print("Coalesced errors:")
    for error in errors:
        info = XID_CATALOG[Xid(error.xid)]
        print(
            f"  t={error.time:>9.1f}s  {error.node_id} {error.pci_bus}  "
            f"XID {error.xid} ({info.abbreviation}), persisted "
            f"{format_duration(max(error.persistence, 0.1))}"
        )
    print()

    analyzer = JobImpactAnalyzer(incident.slurm_db, errors)
    for job in incident.slurm_db.jobs:
        is_failed, responsible = analyzer.classify_jobs()[job.job_id]
        verdict = "GPU-FAILED" if is_failed else "unaffected"
        codes = ", ".join(str(x) for x in responsible) or "-"
        print(
            f"  job {job.job_id} ({job.name}, {job.n_gpus} GPU(s) on "
            f"{len(job.nodes)} node(s)): {verdict}; responsible XIDs: {codes}; "
            f"exit={job.exit_code} state={job.state.value}"
        )

    if len(errors) > 1:
        graph = PropagationAnalyzer(errors).analyze()
        for (src, dst), stats in graph.intra_edges.items():
            print(
                f"  propagation: XID {src} -> XID {dst} "
                f"(mean {stats.mean_delay:.1f}s)"
            )

    downtime = incident.slurm_db.total_downtime_node_hours()
    if downtime:
        print(f"  recovery cost: {downtime:.1f} node-hours of drain + reboot")
    print()


def main() -> None:
    investigate("Incident: GSP RPC timeout (paper Figure 1)", gsp_incident())
    investigate(
        "Incident 1: NVLink error fails a 4-node MPI job (Figure 8)",
        nvlink_multinode_incident(),
    )
    investigate(
        "Incident 2: PMU SPI error cascades into an MMU error (Figure 8)",
        pmu_mmu_incident(),
    )


if __name__ == "__main__":
    main()
