#!/usr/bin/env python3
"""Capacity planner for large gang-scheduled training jobs.

A downstream use of the Section-5.4 model: given a job size, an expected
per-GPU failure rate (or a measured node availability), and a
checkpoint-recovery time, size the spare pool that keeps the job from ever
blocking — and show what faster recovery or better hardware buys you.

Usage::

    python examples/overprovisioning_planner.py --gpus 800 --recovery-min 40
    python examples/overprovisioning_planner.py --gpus 4096 --availability 0.999
"""

import argparse

from repro.core.overprovision import (
    OverprovisionConfig,
    OverprovisionSimulator,
    required_overprovision_analytic,
)
from repro.util.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--gpus", type=int, default=800)
    parser.add_argument("--duration-days", type=float, default=30.0)
    parser.add_argument("--failure-prob-per-hour", type=float, default=0.01)
    parser.add_argument("--availability", type=float, default=0.995)
    parser.add_argument("--recovery-min", type=float, default=40.0)
    parser.add_argument("--simulate", action="store_true",
                        help="validate the analytic sizing with the DES")
    args = parser.parse_args()

    base = OverprovisionConfig(
        n_nodes=args.gpus,
        duration_days=args.duration_days,
        failure_prob_per_hour=args.failure_prob_per_hour,
        recovery_minutes=args.recovery_min,
        availability=args.availability,
    )

    print(f"Job: {args.gpus} GPUs x {args.duration_days:.0f} days, "
          f"availability {args.availability*100:.2f}%, "
          f"recovery {args.recovery_min:.0f} min")
    print(f"Expected failures/hour: {base.effective_failure_rate_per_hour:.2f}")
    print()

    table = Table(
        "Spare-pool sizing across recovery-time scenarios",
        ["Recovery (min)", "Spares (analytic)", "Overprovision %", "Spares (DES)"],
    )
    for recovery in (5.0, 10.0, 20.0, args.recovery_min):
        config = OverprovisionConfig(
            n_nodes=base.n_nodes,
            duration_days=base.duration_days,
            failure_prob_per_hour=base.failure_prob_per_hour,
            recovery_minutes=recovery,
            availability=base.availability,
        )
        fraction = required_overprovision_analytic(config)
        simulated = "-"
        if args.simulate:
            simulated = round(
                OverprovisionSimulator(config).required_overprovision() * config.n_nodes
            )
        table.add_row(
            recovery,
            round(fraction * config.n_nodes),
            fraction * 100.0,
            simulated,
        )
    print(table.render())
    print()

    improved = OverprovisionConfig(
        n_nodes=base.n_nodes,
        duration_days=base.duration_days,
        failure_prob_per_hour=base.failure_prob_per_hour,
        recovery_minutes=base.recovery_minutes,
        availability=min(0.9999, 1.0 - (1.0 - base.availability) / 3.3),
    )
    now = required_overprovision_analytic(base)
    then = required_overprovision_analytic(improved)
    print(
        f"Improving availability {base.availability*100:.2f}% -> "
        f"{improved.availability*100:.2f}% cuts overprovisioning "
        f"{now*100:.1f}% -> {then*100:.1f}% ({now/then:.1f}x), the paper's "
        "Section 5.5 projection."
    )


if __name__ == "__main__":
    main()
