#!/usr/bin/env python3
"""A complete operator post-mortem report for one observation window.

Combines the secondary analyses into the document an SRE team would
actually circulate after a review period: concentration (who to replace),
reliability statistics with uncertainty (how bad is it really), trend
(is it getting better), the generational context, and the projected
capacity cost.

Usage::

    python examples/operator_report.py [scale] [seed]
"""

import sys

from repro import DeltaStudy, synthesize_delta
from repro.core import (
    GenerationComparison,
    OverprovisionConfig,
    SpatialAnalyzer,
    fit_weibull,
    mtbe_confidence_interval,
    required_overprovision_analytic,
    trend_test,
)
from repro.core.reliability import interarrival_times
from repro.core.report import render_generations, render_spatial
from repro.faults.xid import XID_CATALOG, Xid


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    print(f"Building the window (scale={scale}, seed={seed})...\n")
    dataset = synthesize_delta(scale=scale, seed=seed)
    study = DeltaStudy.from_dataset(dataset)
    stats = study.error_statistics()
    errors = stats.errors

    print("=" * 74)
    print("GPU FLEET POST-MORTEM")
    print("=" * 74)

    # 1. Reliability with uncertainty.
    print("\n1. MTBE with 95% bootstrap confidence intervals (system-hours)")
    for xid in (Xid.MMU, Xid.NVLINK, Xid.GSP, Xid.UNCONTAINED):
        subset = [e for e in errors if e.xid == int(xid)]
        if len(subset) < 3:
            continue
        interval = mtbe_confidence_interval(subset)
        shape = fit_weibull(interarrival_times(subset)).shape
        arrival = "bursty" if shape < 0.95 else "memoryless" if shape < 1.05 else "wear-out"
        print(
            f"   XID {int(xid):>3} {XID_CATALOG[xid].abbreviation:<20}: "
            f"{interval.point:6.2f} h  [{interval.low:6.2f}, {interval.high:6.2f}]"
            f"   arrivals: {arrival} (Weibull k={shape:.2f})"
        )

    # 2. Trend.
    result = trend_test(errors, dataset.window_seconds)
    verdict = (
        "improving (burn-in replacements working)" if result.improving
        else "degrading" if result.degrading else "stationary"
    )
    print(f"\n2. Laplace trend over the window: u={result.statistic:+.2f} -> {verdict}")

    # 3. Who to replace.
    print("\n3. " + render_spatial(SpatialAnalyzer(errors, n_gpus=848)))
    offenders = SpatialAnalyzer(errors, n_gpus=848).offenders(95)
    for offender in offenders[:3]:
        print(
            f"   replace {offender.gpu[0]} {offender.gpu[1]}: "
            f"{offender.count:,} uncontained errors "
            f"(P(chance) < 1e-{offender.surprise:.0f})"
        )

    # 4. Generational context.
    print("\n4. " + render_generations(
        GenerationComparison(stats, study.propagation())
    ))

    # 5. Capacity cost.
    availability = study.availability().report().availability
    fraction = required_overprovision_analytic(
        OverprovisionConfig(availability=max(0.99, min(availability, 0.9999)))
    )
    print(
        f"\n5. At the measured {availability*100:.2f}% node availability, an "
        f"800-GPU month-long job needs ~{fraction*100:.0f}% spare capacity "
        f"({fraction*800:.0f} GPUs) at a 40-minute recovery time."
    )


if __name__ == "__main__":
    main()
