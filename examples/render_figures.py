#!/usr/bin/env python3
"""Render the paper's figures as SVG files from a synthesized dataset.

Writes ``figures/*.svg``: Table-1 counts, Figure 9a/9c, the Figure-5 and
Figure-7 propagation graphs, and the Section-5.4 overprovisioning sweep —
all from *measured* pipeline output, no plotting dependencies.

Usage::

    python examples/render_figures.py [scale] [output_dir]
"""

import sys
from pathlib import Path

from repro import DeltaStudy, synthesize_delta
from repro.core import OverprovisionConfig, OverprovisionSimulator
from repro.viz import render_all_figures


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    directory = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("figures")

    print(f"Synthesizing dataset (scale={scale}) and running the pipeline...")
    dataset = synthesize_delta(scale=scale, seed=7)
    study = DeltaStudy.from_dataset(dataset)

    print("Running the Section-5.4 sweep...")
    sweep = OverprovisionSimulator(OverprovisionConfig(n_trials=3)).sweep(
        recovery_minutes=(5.0, 10.0, 20.0, 40.0),
        availabilities=(0.995, 0.9987),
    )

    paths = render_all_figures(
        stats=study.error_statistics(),
        impact=study.job_impact(),
        availability=study.availability(),
        graph=study.propagation().analyze(),
        sweep=sweep,
        directory=directory,
    )
    print(f"Wrote {len(paths)} figures:")
    for path in paths:
        print(f"  {path}")


if __name__ == "__main__":
    main()
