#!/usr/bin/env python3
"""A tour of the resilience mechanisms, from bits to clusters.

The field study observes mechanisms' *outcomes* in logs; this example runs
the mechanisms themselves:

1. SECDED ECC — correct one bit, detect two (why SBEs never appear in logs
   and DBEs do);
2. row remapping and containment — the Figure-3 recovery tree, including
   what an A40 is missing;
3. NVLink CRC + replay — why an XID-74 line is not necessarily a dead job;
4. checkpointing — why Figure 9b's >4,000-minute jobs finish despite
   repeated errors.

Usage::

    python examples/mechanisms_tour.py
"""

import numpy as np

from repro.memory import DecodeStatus, GpuMemory, decode, encode, flip_bits
from repro.nvlink import LinkConfig, simulate_collective
from repro.slurm.checkpointing import (
    CheckpointConfig,
    expected_overhead,
    optimal_interval,
    simulate_run,
)


def banner(title: str) -> None:
    print()
    print(f"--- {title} " + "-" * max(0, 70 - len(title)))


def tour_secded() -> None:
    banner("1. SECDED ECC (Section 2.3.1)")
    word = 0xDEADBEEFCAFEBABE
    codeword = encode(word)
    print(f"data word  : {word:#018x}")
    print(f"codeword   : 72 bits ({codeword:#020x})")

    single = decode(flip_bits(codeword, [13]))
    print(f"1 bit flip : {single.status.value} -> data intact: "
          f"{single.data == word} (corrected bit {single.corrected_position}; "
          "never logged)")

    double = decode(flip_bits(codeword, [13, 57]))
    print(f"2 bit flips: {double.status.value} -> this is the DBE that logs "
          "XID 48 and starts Figure 3's recovery tree")


def tour_memory() -> None:
    banner("2. Row remapping + containment (Figure 3)")
    rng = np.random.default_rng(1)

    a100 = GpuMemory(supports_containment=True, containment_success_prob=1.0)
    a100.write((0, 7, 0), 42)
    a100.inject_bit_flips((0, 7, 0), [3, 44])
    _, events = a100.read((0, 7, 0), rng)
    print("A100, spares available :", " -> ".join(e.kind.name for e in events),
          f"(GPU operable: {a100.operable})")

    a100b = GpuMemory(supports_containment=True, containment_success_prob=1.0)
    a100b.remapper.exhaust_bank(0)
    a100b.write((0, 7, 0), 42)
    a100b.inject_bit_flips((0, 7, 0), [3, 44])
    _, events = a100b.read((0, 7, 0), rng, owning_pid=4242)
    print("A100, spares exhausted :", " -> ".join(e.kind.name for e in events),
          f"(GPU operable: {a100b.operable}, page offlined: "
          f"{a100b.containment.offlined_pages})")

    a40 = GpuMemory(supports_containment=False)
    a40.remapper.exhaust_bank(0)
    a40.write((0, 7, 0), 42)
    a40.inject_bit_flips((0, 7, 0), [3, 44])
    _, events = a40.read((0, 7, 0), rng)
    print("A40,  spares exhausted :", " -> ".join(e.kind.name for e in events),
          f"(GPU operable: {a40.operable} <- no containment hardware)")


def tour_topology() -> None:
    banner("3a. NVLink topology and collectives (Figure 2's node configs)")
    from repro.cluster.node import NodeKind
    from repro.cluster.topology import nvlink_topology_for
    from repro.nvlink import LinkConfig, LinkFabric

    rng = np.random.default_rng(2)
    for kind, label in ((NodeKind.A100_X4, "4-way A100 (all-to-all)"),
                        (NodeKind.A100_X8, "8-way A100 (NVSwitch)"),
                        (NodeKind.A40_X4, "4-way A40 (bridge pairs)")):
        fabric = LinkFabric(nvlink_topology_for(kind), LinkConfig(bit_error_rate=0.0))
        ring = fabric.ring_order()
        result = fabric.ring_allreduce(rng)
        ring_text = "-".join(map(str, ring)) if ring else "none (no Hamiltonian cycle)"
        print(f"{label:<26}: ring {ring_text:<18} "
              f"NVLink hops {result.nvlink_hops:>3}, PCIe fallback "
              f"{result.pcie_fallback_hops}")


def tour_nvlink() -> None:
    banner("3. NVLink CRC + replay (finding iii)")
    noisy = LinkConfig(bit_error_rate=1e-5)
    with_retry = simulate_collective(config=noisy, n_jobs=60, seed=5)
    no_retry = simulate_collective(
        config=LinkConfig(bit_error_rate=1e-5, retry_enabled=False),
        n_jobs=60, seed=5,
    )
    print(f"detected link CRC errors      : {with_retry.total_crc_errors}")
    print(f"jobs surviving (with replay)  : {with_retry.survival_rate*100:.0f}%")
    print(f"jobs surviving (no replay)    : {no_retry.survival_rate*100:.0f}%")
    print("-> the mechanism behind '34% of jobs with NVLink errors completed'")


def tour_checkpointing() -> None:
    banner("4. Checkpointing (Sections 5.1/5.3, Figure 9b)")
    config = CheckpointConfig(mtbf_hours=67.0)  # the measured MTBF
    tau = optimal_interval(config)
    print(f"measured MTBF 67 h -> optimal checkpoint interval {tau:.1f} h, "
          f"expected overhead {expected_overhead(config, tau)*100:.1f}%")
    useful = 500.0
    with_ckpt = simulate_run(useful, config, seed=3)
    without = simulate_run(useful, config, seed=3, checkpointing=False)
    print(f"500 h job with checkpoints : {with_ckpt.wall_hours:7.0f} h wall, "
          f"{with_ckpt.n_failures} failures survived")
    print(f"500 h job restart-from-zero: {without.wall_hours:7.0f} h wall "
          "(why un-checkpointed long jobs effectively never finish)")


if __name__ == "__main__":
    tour_secded()
    tour_memory()
    tour_nvlink()
    tour_topology()
    tour_checkpointing()
    print()
