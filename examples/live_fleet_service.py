#!/usr/bin/env python3
"""Live fleet health service, end to end, in one process.

Section 4.3's recommendation is operational, not analytical: *watch the
errors as they happen*.  This example wires the whole live path together
against a simulated cluster:

1. inject a compressed two-day fault trace onto a miniature Delta
   (every default alert rule's trigger is present — a fall-off-the-bus,
   repeated GSP timeouts, a DBE -> row-remap chain, a bursty uncontained
   offender with a heavy persistence tail);
2. replay its syslog lines into per-node log files, live;
3. follow those files with the concurrent tailer pool (bounded queue,
   no global sort), maintain per-GPU health in the sharded registry,
   evaluate the paper's operator rules, and serve Prometheus metrics;
4. print every alert as it fires, then a closing health report and a
   final ``/metrics`` scrape.

The same service runs against a real log directory via
``repro-delta serve /var/log/gpu-logs``.

Usage::

    python examples/live_fleet_service.py [seed] [--speedup N]

``--speedup 86400`` replays one simulated day per wall-clock second;
the default replays flat-out.
"""

import argparse
import urllib.request

from repro.fleet import (
    FleetHealthService,
    FleetServiceConfig,
    LiveLogEmitter,
    MemorySink,
    StdoutSink,
)
from repro.fleet.demo import demo_counts, demo_trace
from repro.util.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("seed", nargs="?", type=int, default=11)
    parser.add_argument("--speedup", type=float, default=None)
    parser.add_argument("--logs", default="out/fleet-logs")
    args = parser.parse_args()

    trace = demo_trace(seed=args.seed)
    print(
        f"injected {len(trace)} fault events over "
        f"{trace.window_seconds / 86_400.0:.0f} simulated days "
        f"on {len(trace.node_ids)} GPU nodes"
    )

    memory = MemorySink()
    service = FleetHealthService(
        FleetServiceConfig(logs_dir=args.logs, alarm_after_seconds=600.0),
        sinks=[StdoutSink(), memory],
    )
    service.start()
    print(f"metrics endpoint: {service.metrics_url}\n")

    emitter = LiveLogEmitter.from_trace(
        trace, args.logs, seed=args.seed, speedup=args.speedup
    )
    emitter.start()
    emitter.join()
    service.wait_idle(timeout=60.0)

    # -- closing health report ----------------------------------------
    summary = service.summary()
    print(
        f"\ningested {summary['records_ingested']:,} raw lines -> "
        f"{summary['error_onsets']} error onsets on "
        f"{summary['tracked_gpus']} GPUs "
        f"({summary['persistence_alarms']} persistence alarms)"
    )
    truth = demo_counts(trace)
    measured = summary["onsets_by_xid"]
    table = Table("Injected faults vs observed onsets",
                  ["XID", "injected", "observed"])
    for xid in sorted(truth):
        table.add_row(xid, truth[xid], measured.get(xid, 0))
    print()
    print(table.render())

    print("\nriskiest GPUs right now:")
    for health in sorted(
        service.registry.snapshot(), key=lambda h: h.risk_score, reverse=True
    )[:5]:
        print(
            f"  {health.node_id}/{health.pci_bus}  "
            f"risk={health.risk_score:.3f}  onsets={health.total_onsets}  "
            f"rate={health.error_rate_per_hour(3600.0):.1f}/h"
        )

    print("\nalerts by recommended action:")
    actions = {}
    for alert in memory.alerts:
        actions.setdefault(alert.action.value, []).append(alert)
    for action, alerts in sorted(actions.items()):
        units = {f"{a.node_id}/{a.pci_bus}" for a in alerts}
        print(f"  {action:20s} x{len(alerts)}  ({len(units)} units)")

    scrape = urllib.request.urlopen(service.metrics_url, timeout=10).read()
    service.stop()
    print(f"\nfinal scrape: {len(scrape.splitlines())} metric lines, e.g.")
    for line in scrape.decode().splitlines():
        if line.startswith("repro_fleet_error_onsets_total{"):
            print(f"  {line}")


if __name__ == "__main__":
    main()
