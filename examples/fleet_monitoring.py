#!/usr/bin/env python3
"""SRE fleet monitoring: the watchlist the paper recommends.

Section 4.3 concludes that SREs should continuously watch the *tail* of the
persistence distribution — long-persisting errors carry 91% of the lost GPU
hours — and Section 4.1 flags DBEs and row-remapping failures for timely GPU
replacement.  This example builds that watchlist from a synthesized month of
telemetry:

* longest-persisting errors (candidates for immediate GPU reset);
* GPUs with repeated uncontained/DBE/RRF errors (replacement candidates);
* nodes whose drain/reboot history makes them availability liabilities.

Usage::

    python examples/fleet_monitoring.py [seed]
"""

import sys
from collections import Counter

from repro import DeltaStudy, synthesize_delta
from repro.faults.xid import XID_CATALOG, Xid
from repro.util.tables import Table
from repro.util.timeutil import format_duration


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    scale = 30.0 / 855.0  # one month of telemetry

    print("Synthesizing one month of fleet telemetry...")
    dataset = synthesize_delta(scale=scale, seed=seed)
    study = DeltaStudy.from_dataset(dataset)
    persistence = study.persistence()
    stats = study.error_statistics()

    print()
    table = Table(
        "Watchlist 1 - longest-persisting errors (reset candidates)",
        ["Node", "PCI bus", "XID", "Error", "Persisted", "Raw lines"],
    )
    for error in persistence.longest(8):
        table.add_row(
            error.node_id,
            error.pci_bus,
            error.xid,
            XID_CATALOG[Xid(error.xid)].abbreviation,
            format_duration(error.persistence),
            error.n_raw,
        )
    print(table.render())

    tail = persistence.tail_analysis()
    print(
        f"\nLost GPU computation this month: {tail.total_lost_gpu_hours:,.1f} GPU-hours; "
        f"{tail.tail_share*100:.0f}% of it from beyond-P95 errors "
        "(paper: 91%) - watch the tail."
    )

    print()
    table = Table(
        "Watchlist 2 - GPU replacement candidates (memory-error repeat offenders)",
        ["Node", "PCI bus", "Uncontained", "DBE", "RRF"],
    )
    candidates = Counter()
    for xid in (Xid.UNCONTAINED, Xid.DBE, Xid.RRF):
        for gpu, count in stats.top_offenders(int(xid), k=3):
            if count >= 2:
                candidates[gpu] += count
    per_gpu = {
        xid: stats.per_gpu_counts(int(xid))
        for xid in (Xid.UNCONTAINED, Xid.DBE, Xid.RRF)
    }
    for gpu, _ in candidates.most_common(6):
        table.add_row(
            gpu[0],
            gpu[1],
            per_gpu[Xid.UNCONTAINED].get(gpu, 0),
            per_gpu[Xid.DBE].get(gpu, 0),
            per_gpu[Xid.RRF].get(gpu, 0),
        )
    print(table.render())

    print()
    table = Table(
        "Watchlist 3 - availability liabilities (most node downtime)",
        ["Node", "Incidents", "Downtime (h)"],
    )
    downtime = Counter()
    incidents = Counter()
    for event in dataset.slurm_db.node_events:
        downtime[event.node_id] += event.duration_hours
        incidents[event.node_id] += 1
    for node, hours in downtime.most_common(6):
        table.add_row(node, incidents[node], hours)
    print(table.render())

    availability = study.availability().report()
    print(
        f"\nFleet availability this month: {availability.availability*100:.2f}% "
        f"(MTTR {availability.mttr_hours:.2f} h over "
        f"{availability.n_incidents:,} incidents)"
    )


if __name__ == "__main__":
    main()
