#!/usr/bin/env python3
"""Full paper reproduction: every table and figure, paper vs measured.

At ``--scale 1.0`` this regenerates the complete 855-day / 206-node Ampere
dataset (~63k coalesced errors, ~1.4M jobs, ~10M raw log lines) plus the
H100 early-deployment dataset, runs the whole pipeline, and prints each of
the paper's tables and figures with the published values alongside.  Takes
a few minutes and ~4 GB of RAM at full scale; use ``--scale 0.1`` for a
half-minute run.

The captured full-scale output of this script is the basis of
EXPERIMENTS.md.

Usage::

    python examples/full_reproduction.py [--scale 1.0] [--seed 7]
"""

import argparse
import time

from repro import DeltaStudy, H100Analyzer, synthesize_delta, synthesize_h100
from repro.core import OverprovisionConfig, OverprovisionSimulator
from repro.core.report import (
    render_counterfactual,
    render_figure5,
    render_figure6,
    render_figure7,
    render_figure9,
    render_overprovision,
    render_table1,
    render_table2,
    render_table3,
)
from repro.faults import AMPERE_CALIBRATION


def banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    t0 = time.time()
    banner(f"Synthesizing the Ampere dataset (scale={args.scale})")
    dataset = synthesize_delta(scale=args.scale, seed=args.seed)
    print(
        f"ground truth: {len(dataset.trace):,} errors, {len(dataset.slurm_db):,} jobs "
        f"({time.time() - t0:.1f}s)"
    )
    if dataset.schedule is not None:
        print(f"workload utilization: {dataset.schedule.utilization()*100:.1f}% "
              "(paper: A40 ~40%, A100 ~51%)")

    t0 = time.time()
    study = DeltaStudy.from_dataset(dataset)
    n_errors = len(study.errors)
    print(f"pipeline Stage I+II: {n_errors:,} coalesced errors ({time.time() - t0:.1f}s)")

    stats = study.error_statistics()
    impact = study.job_impact()
    availability = study.availability()
    propagation = study.propagation()

    banner("Table 1 - GPU error statistics")
    print(render_table1(stats, AMPERE_CALIBRATION, scale=args.scale))

    banner("Figures 5-7 - error propagation")
    print(render_figure5(propagation))
    print()
    print(render_figure6(propagation))
    print()
    print(render_figure7(propagation))

    banner("Table 2 - job failure probability per XID")
    print(render_table2(impact))

    banner("Table 3 - job distribution")
    print(render_table3(impact))

    banner("Figure 9 - job impact and availability")
    print(render_figure9(impact, availability))

    banner("Section 5.4 - overprovisioning projection")
    simulator = OverprovisionSimulator(OverprovisionConfig(seed=args.seed))
    print(render_overprovision(simulator.sweep(
        recovery_minutes=(5.0, 10.0, 20.0, 40.0),
        availabilities=(0.995, 0.9987),
    )))

    banner("Section 5.5 - counterfactual improvements")
    print(render_counterfactual(study.counterfactual().analyze()))

    banner("Section 6 - emerging H100 errors")
    h100 = synthesize_h100(seed=args.seed)
    h100_stats = DeltaStudy.from_dataset(h100).error_statistics()
    report = H100Analyzer(h100_stats).report()
    print(f"counts: {report.counts}")
    print("        (paper: 18 MMU, 10 DBE, 5 RRF, 9 contained, 70 XID-136)")
    print(f"MTBE  : {report.mtbe_node_hours:,.0f} node-hours (paper 4,114)")
    print(f"DBE/RRF-without-RRE anomaly: {report.has_remap_anomaly} (paper: present)")


if __name__ == "__main__":
    main()
