#!/usr/bin/env python3
"""Quickstart: synthesize a small Delta-like dataset and characterize it.

Runs the full loop in under a minute:

1. build a synthetic dataset (cluster + fault injection + Slurm workload +
   rendered syslog) at 5% of the paper's 855-day window;
2. run the paper's pipeline over the *observables only* (log text + job DB);
3. print the key findings next to the paper's numbers.

Usage::

    python examples/quickstart.py [scale] [seed]
"""

import sys

from repro import DeltaStudy, synthesize_delta
from repro.core.report import render_figure5, render_table1
from repro.faults import AMPERE_CALIBRATION


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    print(f"Synthesizing Delta at scale={scale} (seed={seed})...")
    dataset = synthesize_delta(scale=scale, seed=seed)
    print(
        f"  {len(dataset.trace):,} ground-truth errors, "
        f"{len(dataset.slurm_db):,} jobs, "
        f"{len(dataset.slurm_db.node_events):,} repair incidents"
    )

    print("Running the characterization pipeline (parse -> coalesce -> analyze)...")
    study = DeltaStudy.from_dataset(dataset)
    stats = study.error_statistics()

    print()
    print(render_table1(stats, AMPERE_CALIBRATION, scale=scale))
    print()
    print(render_figure5(study.propagation()))
    print()

    availability = study.availability().report()
    print("Key findings (paper values in parentheses):")
    print(
        f"  overall per-node MTBE      : {stats.overall_mtbe_node_hours():6.1f} h   (67 h)"
    )
    print(
        f"  memory vs hardware MTBE    : {stats.memory_vs_hardware_ratio():6.1f}x  (>30x)"
    )
    print(
        f"  node availability          : {availability.availability*100:6.2f} %  (99.5 %)"
    )
    print(
        f"  downtime per node-day      : {availability.downtime_minutes_per_day:6.1f} min (7 min)"
    )


if __name__ == "__main__":
    main()
