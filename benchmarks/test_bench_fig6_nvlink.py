"""Figure 6: NVLink intra/inter-GPU propagation and involvement."""

import pytest

from repro.core.report import render_figure6
from repro.faults.xid import Xid


@pytest.fixture(scope="module")
def propagation(bench_study):
    return bench_study.propagation()


@pytest.fixture(scope="module")
def graph(propagation):
    return propagation.analyze()


def test_bench_nvlink_involvement(benchmark, propagation, report_sink):
    involvement = benchmark(propagation.nvlink_involvement)
    assert involvement.total_errors > 0
    report_sink.append(render_figure6(propagation))


def test_nvlink_self_recurrence(graph):
    assert graph.probability(Xid.NVLINK, Xid.NVLINK) == pytest.approx(0.66, abs=0.08)


def test_nvlink_inter_gpu_spread(graph):
    inter = graph.probability(Xid.NVLINK, Xid.NVLINK, inter=True)
    assert inter == pytest.approx(0.14, abs=0.07)


def test_nvlink_error_state_fraction(graph):
    error_state = graph.terminal_probability(Xid.NVLINK) - graph.probability(
        Xid.NVLINK, Xid.NVLINK, inter=True
    )
    assert error_state == pytest.approx(0.20, abs=0.12)


def test_most_errors_stay_on_one_gpu(propagation):
    involvement = propagation.nvlink_involvement()
    # Paper: 84-86% single-GPU; the calibration trades a few points of this
    # statistic for hitting the Figure-6 inter-GPU edge probability (see
    # DESIGN.md), so the accepted band is 72-92%.
    assert involvement.single_gpu_fraction == pytest.approx(0.82, abs=0.10)


def test_four_plus_gpu_incidents_exist(propagation):
    involvement = propagation.nvlink_involvement()
    share = (
        involvement.errors_in_4plus_gpu_incidents / involvement.total_errors
        if involvement.total_errors
        else 0.0
    )
    assert share == pytest.approx(0.05, abs=0.045)


def test_nvlink_errors_unpredictable(graph):
    # Paper Section 4.4.2: "we found no preceding hardware errors before
    # NVLink errors" — i.e. nothing *else* flows into NVLink; recurrences of
    # the code itself are the only intra-GPU predecessors.
    inflow = sum(
        stats.count
        for (src, dst), stats in graph.intra_edges.items()
        if dst == int(Xid.NVLINK) and src != int(Xid.NVLINK)
    )
    assert inflow <= graph.source_counts.get(int(Xid.NVLINK), 0) * 0.02


def test_nvlink_mtbe_per_node(bench_study):
    stats = bench_study.error_statistics()
    assert stats.mtbe_per_node_hours(int(Xid.NVLINK)) == pytest.approx(1_415, rel=0.15)
