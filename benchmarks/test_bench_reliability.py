"""Reliability statistics and spatial concentration at bench scale."""

import pytest

from repro.core.reliability import (
    fit_exponential,
    fit_weibull,
    interarrival_times,
    mtbe_confidence_interval,
    trend_test,
)
from repro.core.spatial import SpatialAnalyzer
from repro.util.tables import Table


@pytest.fixture(scope="module")
def errors(bench_study):
    return bench_study.error_statistics().errors


def test_bench_bootstrap_ci(benchmark, errors):
    mmu = [e for e in errors if e.xid == 31]
    interval = benchmark(lambda: mtbe_confidence_interval(mmu, n_bootstrap=500))
    assert interval.low < interval.high


def test_mtbe_intervals_bracket_table1(errors, bench_scale, report_sink):
    table = Table(
        "MTBE with bootstrap 95% CIs (system-hours; Table 1 as point values)",
        ["XID", "MTBE (h)", "CI low", "CI high", "Table 1"],
    )
    paper = {31: 1.09, 74: 6.87, 95: 0.53, 119: 9.61}
    for xid, reference in paper.items():
        subset = [e for e in errors if e.xid == xid]
        interval = mtbe_confidence_interval(subset)
        table.add_row(xid, interval.point, interval.low, interval.high, reference)
        if xid == 95:
            # Bursty arrivals: the mean inter-arrival gap sits below the
            # window/count estimator Table 1 uses (boundary intervals are
            # excluded from gaps) — report, don't bracket.
            continue
        # The paper's point estimate should sit inside (or graze) the CI.
        slack = (interval.high - interval.low) * 0.5
        assert interval.low - slack <= reference <= interval.high + slack, xid
    report_sink.append(table.render())


def test_offender_stream_is_bursty(errors, report_sink):
    """The uncontained arrivals fit a Weibull with shape << 1 (bursty,
    decreasing hazard); GSP arrivals are near-exponential — statistical
    confirmation of Section 4.4's qualitative split."""
    uncontained = interarrival_times([e for e in errors if e.xid == 95])
    gsp = interarrival_times([e for e in errors if e.xid == 119])
    w_unc = fit_weibull(uncontained)
    w_gsp = fit_weibull(gsp)
    assert w_unc.shape < 0.85
    assert w_gsp.shape == pytest.approx(1.0, abs=0.25)
    assert w_unc.shape < w_gsp.shape - 0.1
    assert fit_weibull(uncontained).log_likelihood > fit_exponential(
        uncontained
    ).log_likelihood
    report_sink.append(
        "Inter-arrival shape (Weibull k): "
        f"uncontained {w_unc.shape:.2f} (bursty) vs GSP {w_gsp.shape:.2f} "
        "(memoryless) - the offender's burstiness is statistically distinct"
    )


def test_spatial_concentration(bench_study, errors, report_sink):
    analyzer = SpatialAnalyzer(errors, n_gpus=848)
    table = Table(
        "Spatial concentration per code (Section 4.2 iii)",
        ["XID", "Gini", "top-1 share", "top-4 share", "GPUs affected %"],
    )
    for xid in (95, 31, 74, 119):
        table.add_row(
            xid,
            analyzer.gini(xid),
            analyzer.top_share(xid, 1),
            analyzer.top_share(xid, 4),
            analyzer.affected_gpu_fraction(xid) * 100,
        )
    report_sink.append(table.render())
    assert analyzer.top_share(95, 1) > 0.95  # paper: one GPU at 99%
    assert analyzer.top_share(95, 4) > 0.97  # paper: 4 GPUs hold ~all
    assert analyzer.gini(95) > analyzer.gini(119)


def test_gsp_stream_is_stationary(errors, bench_study):
    """GSP errors arrive steadily across the window (no burn-in effect),
    unlike the testing-phase-concentrated memory codes."""
    gsp = [e for e in errors if e.xid == 119]
    result = trend_test(gsp, bench_study.window_hours * 3600.0)
    assert abs(result.statistic) < 4.0  # no strong drift
