"""Ablation: GSP enabled vs disabled (the AWS mitigation).

Finding (ii): the GSP is the most vulnerable hardware component, and "AWS
recommends disabling GSP for stability over performance benefits".  The
mechanistic driver model quantifies both sides of that trade: XID-119
timeouts and unavailability with GSP on, multiplied host-CPU cost with GSP
off.
"""

import numpy as np
import pytest

from repro.gsp.driver import DriverConfig, GpuDriver
from repro.gsp.processor import GspProcessor
from repro.util.tables import Table

N_CALLS = 15_000
HANG = 3e-5
LOAD_FACTOR = 0.4


def _run(enabled: bool, burst: int, seed: int = 5):
    driver = GpuDriver(
        DriverConfig(gsp_enabled=enabled),
        GspProcessor(base_hang_prob=HANG, load_hang_factor=LOAD_FACTOR),
    )
    return driver.run_workload(N_CALLS, np.random.default_rng(seed), burst_depth=burst)


@pytest.fixture(scope="module")
def gsp_on():
    return _run(True, burst=8)


@pytest.fixture(scope="module")
def gsp_off():
    return _run(False, burst=8)


def test_bench_gsp_workload(benchmark):
    stats = benchmark.pedantic(lambda: _run(True, burst=4), rounds=2, iterations=1)
    assert stats.calls == N_CALLS


def test_gsp_on_suffers_timeouts(gsp_on):
    assert gsp_on.timeouts >= 3
    assert gsp_on.unavailable_seconds > 60.0


def test_gsp_off_is_stable_but_slower(gsp_on, gsp_off, report_sink):
    assert gsp_off.timeouts == 0
    assert gsp_off.host_cpu_seconds > 10 * gsp_on.host_cpu_seconds

    table = Table(
        "GSP ablation - stability vs performance (the AWS trade-off)",
        ["Config", "XID-119 timeouts", "Unavailable (s)", "Host CPU (s)"],
    )
    table.add_row("GSP enabled", gsp_on.timeouts, gsp_on.unavailable_seconds,
                  gsp_on.host_cpu_seconds)
    table.add_row("GSP disabled", gsp_off.timeouts, gsp_off.unavailable_seconds,
                  gsp_off.host_cpu_seconds)
    report_sink.append(table.render())


def test_demanding_workload_correlation(report_sink):
    """Delta SREs observed timeouts correlated with demanding benchmarks:
    the load-dependent hazard reproduces that correlation."""
    light = _run(True, burst=0, seed=9)
    heavy = _run(True, burst=12, seed=9)
    assert heavy.timeouts > light.timeouts
    report_sink.append(
        f"GSP workload correlation: {light.timeouts} timeouts at idle control "
        f"load vs {heavy.timeouts} under a demanding burst pattern"
    )


def test_every_timeout_is_a_full_gpu_loss(gsp_on):
    # The paper: ~100% of GSP errors leave the GPU inoperable; each of our
    # timeouts forced a reset.
    assert gsp_on.resets == gsp_on.timeouts
