"""Section 5.4: overprovisioning projection for an 800-GPU month-long job."""

import pytest

from repro.core.overprovision import (
    OverprovisionConfig,
    OverprovisionSimulator,
    required_overprovision_analytic,
)
from repro.core.report import render_overprovision


@pytest.fixture(scope="module")
def sweep_results():
    simulator = OverprovisionSimulator(OverprovisionConfig(n_trials=3))
    return simulator.sweep(
        recovery_minutes=(5.0, 10.0, 20.0, 40.0),
        availabilities=(0.995, 0.9987),
    )


def test_bench_overprovision_des(benchmark):
    simulator = OverprovisionSimulator(OverprovisionConfig(n_trials=1))
    result = benchmark(lambda: simulator.run_trial(spares=160))
    assert result.n_failures > 1_000


def test_paper_anchor_40min_20_percent(sweep_results, report_sink):
    report_sink.append(render_overprovision(sweep_results))
    assert sweep_results[(40.0, 0.995)] == pytest.approx(0.20, abs=0.03)


def test_paper_anchor_5min_5_percent(sweep_results):
    assert sweep_results[(5.0, 0.995)] == pytest.approx(0.05, abs=0.02)


def test_sweep_monotone_in_recovery(sweep_results):
    values = [sweep_results[(r, 0.995)] for r in (5.0, 10.0, 20.0, 40.0)]
    assert values == sorted(values)


def test_availability_improvement_cuts_overprovision(sweep_results):
    # Paper Section 5.5: 99.5% -> 99.9% availability shrinks the spare pool
    # by roughly 4x (20% -> 5%).
    base = sweep_results[(40.0, 0.995)]
    improved = sweep_results[(40.0, 0.9987)]
    assert base / improved > 2.2


def test_simulation_validates_analytic_model(sweep_results):
    for (recovery, availability), simulated in sweep_results.items():
        analytic = required_overprovision_analytic(
            OverprovisionConfig(recovery_minutes=recovery, availability=availability)
        )
        assert simulated == pytest.approx(analytic, rel=0.3), (recovery, availability)
