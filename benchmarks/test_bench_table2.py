"""Table 2: job-failure probability given each XID."""

import pytest

from repro.core.jobimpact import JobImpactAnalyzer
from repro.core.report import render_table2
from repro.faults.calibration import PAPER_TABLE2
from repro.faults.xid import Xid


@pytest.fixture(scope="module")
def impact(bench_study):
    analyzer = bench_study.job_impact()
    analyzer.classify_jobs()
    return analyzer


def test_bench_table2_classification(benchmark, bench_study, report_sink):
    database = bench_study.slurm_db
    errors = bench_study.errors

    def classify():
        return JobImpactAnalyzer(database, errors).table2()

    rows = benchmark.pedantic(classify, rounds=3, iterations=1)
    assert rows

    report_sink.append(render_table2(JobImpactAnalyzer(database, errors)))


def test_mmu_failure_probability(impact):
    rows = {r.xid: r for r in impact.table2()}
    assert rows[int(Xid.MMU)].failure_probability == pytest.approx(0.5867, abs=0.08)


def test_hard_codes_always_fatal(impact):
    # GSP / RRF / uncontained: no application-level handling exists.
    rows = {r.xid: r for r in impact.table2()}
    for xid in (Xid.GSP, Xid.UNCONTAINED):
        row = rows.get(int(xid))
        if row and row.jobs_encountering >= 3:
            assert row.failure_probability > 0.9, xid


def test_nvlink_and_mmu_are_the_survivable_codes(impact):
    # Paper Section 5.3: only NVLink and MMU errors are sometimes handled.
    rows = {r.xid: r for r in impact.table2()}
    mmu = rows[int(Xid.MMU)]
    assert mmu.failure_probability < 0.8
    nvlink = rows.get(int(Xid.NVLINK))
    if nvlink and nvlink.jobs_encountering >= 5:
        assert nvlink.failure_probability < 0.95


def test_total_gpu_failed_scales_with_paper(impact, bench_scale):
    assert impact.total_gpu_failed() == pytest.approx(4_322 * bench_scale, rel=0.35)


def test_mmu_dominates_gpu_failed_jobs(impact):
    rows = impact.table2()
    assert rows[0].xid == int(Xid.MMU)  # sorted by failed-job count


def test_success_rate_near_paper(impact):
    assert impact.success_rate() == pytest.approx(0.7468, abs=0.01)


def test_encounter_ordering_matches_paper(impact, bench_scale):
    # Encounter volume ordering: MMU >> uncontained >> the rest.
    rows = {r.xid: r for r in impact.table2()}
    mmu = rows[int(Xid.MMU)].jobs_encountering
    paper_mmu = PAPER_TABLE2[Xid.MMU][1] * bench_scale
    assert mmu == pytest.approx(paper_mmu, rel=0.3)
    for xid in (Xid.UNCONTAINED, Xid.GSP, Xid.NVLINK):
        row = rows.get(int(xid))
        if row is not None:
            assert row.jobs_encountering < mmu
