"""Benchmark the replay subsystem: throughput and determinism under load.

Synthesizes a fleet history, ingests it into the columnar store, then
replays it through the full live stack (registry -> rule engine ->
persistence alarms) in unbounded mode and answers the question the
subsystem exists for — *how much faster than real time can a stored
history be re-lived?* — while verifying the determinism contract end
to end:

* two unbounded replays of the same history produce identical alert
  streams (same rules, same event times, same order);
* the backtest scorecard is byte-identical across repeated runs and
  across a windowed :class:`ReplayCursor` stream vs a flat store query;
* a paced replay under a virtual clock reports the same scorecard as
  the unbounded one — wall time paces delivery, never decides.

The gated figure is real-time multiple: replayed history span divided
by the wall seconds the unbounded replay took.  A two-day trace that
replays in two seconds scores 86,400x; the default gate asks for at
least 50x, far below what the stack achieves but high enough to catch
an accidental wall-clock sleep creeping into the hot path.

Timings land in ``BENCH_replay.json``.  Standalone on purpose, and CI
runs the same script in ``--smoke`` mode as a cheap contract check::

    PYTHONPATH=src python benchmarks/bench_replay.py            # full timing
    PYTHONPATH=src python benchmarks/bench_replay.py --smoke    # CI check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.datasets import synthesize_delta
from repro.pipeline import FileSetSource
from repro.replay import (
    BacktestConfig,
    ReplayEngine,
    ReplayPacer,
    VirtualClock,
    run_backtest,
)
from repro.store import EventStore, ReplayCursor

#: The acceptance gate: the unbounded replay must re-live history at
#: least this many times faster than real time (skipped under --smoke).
DEFAULT_MIN_REALTIME_MULTIPLE = 50.0


def _parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale (fraction of the 855-day window)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-speedup", type=float,
                        default=DEFAULT_MIN_REALTIME_MULTIPLE,
                        help="fail unless the real-time multiple reaches this")
    parser.add_argument("--output", default="BENCH_replay.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny dataset for CI: verifies determinism, "
                        "skips the throughput gate")
    return parser.parse_args(argv)


def _backtest_bytes(store, *, pacer=None, source_factory=None) -> bytes:
    factory = source_factory or (lambda: store.query())
    result = run_backtest(
        factory,
        BacktestConfig(),
        pacer=pacer,
        source_label="bench",
        source_fingerprint=store.content_hash(),
    )
    return result.render_json().encode()


def main(argv=None) -> int:
    args = _parse_args(argv)
    if args.smoke:
        args.scale = min(args.scale, 0.01)

    tmp = tempfile.TemporaryDirectory(prefix="bench-replay-")
    logs_dir = Path(tmp.name) / "logs"
    store_dir = Path(tmp.name) / "events"
    print(f"synthesizing dataset (scale={args.scale}, seed={args.seed})...")
    t0 = time.perf_counter()
    dataset = synthesize_delta(scale=args.scale, seed=args.seed)
    paths = dataset.write_logs(logs_dir)
    store = EventStore.create(store_dir)
    store.ingest(FileSetSource(logs_dir), workers=1)
    print(f"  {store.n_records:,} records from {len(paths)} node logs in "
          f"{time.perf_counter() - t0:.1f} s")

    # Warm pass: page cache + first-touch costs off the timed leg.
    ReplayEngine().replay(store.query())

    # The gated leg: unbounded replay of the full history through the
    # live stack, timed on the wall clock.
    t0 = time.perf_counter()
    outcome = ReplayEngine().replay(store.query())
    replay_seconds = time.perf_counter() - t0
    span_seconds = outcome.span_seconds
    realtime_multiple = (
        span_seconds / replay_seconds if replay_seconds > 0 else float("inf")
    )
    records_per_second = (
        outcome.records / replay_seconds if replay_seconds > 0 else 0.0
    )

    # Determinism contract, leg 1: identical alert streams.
    second = ReplayEngine().replay(store.query())
    alerts_identical = (
        outcome.alerts == second.alerts
        and outcome.onset_events == second.onset_events
    )

    # Leg 2: byte-identical scorecards across repeated runs and across
    # the windowed cursor vs the flat query.
    t0 = time.perf_counter()
    scorecard = _backtest_bytes(store)
    backtest_seconds = time.perf_counter() - t0
    rerun_identical = _backtest_bytes(store) == scorecard
    cursor_identical = _backtest_bytes(
        store,
        source_factory=lambda: ReplayCursor(
            store, window_seconds=6 * 3600.0
        ).iter_records(),
    ) == scorecard

    # Leg 3: pacing under a virtual clock changes nothing but delivery.
    clock = VirtualClock()
    paced = ReplayPacer(100.0, monotonic=clock.monotonic, sleep=clock.sleep)
    paced_identical = _backtest_bytes(store, pacer=paced) == scorecard

    determinism_ok = (
        alerts_identical and rerun_identical
        and cursor_identical and paced_identical
    )

    report = {
        "config": {
            "scale": args.scale,
            "seed": args.seed,
            "min_speedup": args.min_speedup,
            "smoke": args.smoke,
        },
        "cpu_count": os.cpu_count(),
        "n_records": outcome.records,
        "n_alerts": len(outcome.alerts),
        "n_onsets": outcome.onsets,
        "n_alarms": outcome.alarms,
        "n_serials": len(outcome.serials),
        "history_span_seconds": round(span_seconds, 1),
        "history_span_days": round(span_seconds / 86_400.0, 3),
        "replay_seconds": round(replay_seconds, 4),
        "realtime_multiple": round(realtime_multiple, 1),
        "records_per_second": round(records_per_second, 1),
        "backtest_seconds": round(backtest_seconds, 4),
        "alerts_identical": alerts_identical,
        "rerun_identical": rerun_identical,
        "cursor_identical": cursor_identical,
        "paced_identical": paced_identical,
        "determinism_ok": determinism_ok,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print(f"history    : {span_seconds / 86_400.0:.2f} days, "
          f"{outcome.records:,} records, {len(outcome.serials)} GPUs")
    print(f"replay     : {replay_seconds:7.2f} s   "
          f"({realtime_multiple:,.0f}x real time, "
          f"{records_per_second:,.0f} records/s)")
    print(f"backtest   : {backtest_seconds:7.2f} s   "
          f"({len(outcome.alerts)} alerts scored)")
    print(f"alerts identical: {alerts_identical}  "
          f"rerun identical: {rerun_identical}  "
          f"cursor identical: {cursor_identical}  "
          f"paced identical: {paced_identical}")
    print(f"wrote {args.output}")

    tmp.cleanup()
    if not determinism_ok:
        print("ERROR: replay determinism contract violated", file=sys.stderr)
        return 1
    if not args.smoke and realtime_multiple < args.min_speedup:
        print(f"ERROR: real-time multiple {realtime_multiple:.1f}x below "
              f"the {args.min_speedup:.1f}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
