"""Table 3: job distribution, elapsed statistics, ML vs non-ML GPU-hours."""

import pytest

from repro.core.jobimpact import JobImpactAnalyzer
from repro.core.report import render_table3
from repro.slurm.workload import SIZE_BUCKETS


@pytest.fixture(scope="module")
def rows(bench_study):
    return {r.label: r for r in bench_study.job_impact().table3()}


def test_bench_table3(benchmark, bench_study, report_sink):
    impact = bench_study.job_impact()
    table = benchmark(impact.table3)
    assert len(table) == len(SIZE_BUCKETS)
    report_sink.append(render_table3(impact))


def test_count_shares_match_paper(rows):
    paper = {b.label: b.count_share for b in SIZE_BUCKETS}
    for label in ("1", "2-4", "4-8", "8-32"):
        assert rows[label].share == pytest.approx(paper[label], abs=0.015), label


def test_elapsed_medians_match_paper(rows):
    paper = {b.label: b.p50_minutes for b in SIZE_BUCKETS}
    for label in ("1", "2-4", "8-32"):
        assert rows[label].p50_minutes == pytest.approx(paper[label], rel=0.25), label


def test_elapsed_means_match_paper(rows):
    paper = {b.label: b.mean_minutes for b in SIZE_BUCKETS}
    for label in ("1", "2-4", "8-32"):
        assert rows[label].mean_minutes == pytest.approx(paper[label], rel=0.35), label


def test_walltime_cap_visible_in_multi_gpu_p99(rows):
    # Multi-GPU queues pile up at the 2,880-minute cap.
    assert rows["2-4"].p99_minutes == pytest.approx(2_880.0, rel=0.02)


def test_single_gpu_jobs_dominate_gpu_hours_less_than_count(rows):
    # 70% of jobs are single-GPU but they carry a much smaller share of
    # GPU-hours (Table 3's hour columns).
    total_hours = sum(r.ml_gpu_hours + r.non_ml_gpu_hours for r in rows.values())
    single_hours = rows["1"].ml_gpu_hours + rows["1"].non_ml_gpu_hours
    assert rows["1"].share > 0.65
    assert single_hours / total_hours < 0.55


def test_non_ml_hours_exceed_ml_hours(rows):
    # Paper totals: ~1.0M ML vs ~8.1M non-ML GPU-hours.
    ml = sum(r.ml_gpu_hours for r in rows.values())
    non_ml = sum(r.non_ml_gpu_hours for r in rows.values())
    assert non_ml > 3 * ml


def test_largest_jobs_rare(rows):
    assert rows["128-256"].count + rows["256+"].count < rows["8-32"].count
