"""Benchmark the columnar event store: warm queries vs cold re-parsing.

Synthesizes a dataset, writes it out as per-node log files, then answers
the question the store exists for — *how much faster is reading history
back than re-deriving it from raw logs?* — while verifying the identity
contract end to end:

* the store's full-scan query replays the pipeline's merged record
  stream byte-for-byte (order included);
* a store-backed study produces statistics identical to the raw-log
  study (overall and per-XID);
* the representative query (one XID over the tail half of the window,
  the paper's Table-1 slice shape) returns the very records a filter
  over the re-parsed stream returns.

The gated comparison is that representative query: cold answers it by
re-parsing the whole log directory (there is nothing else to consult),
warm answers it from the store, where zone maps prune segments and the
residual predicate runs vectorized.  The full-scan replay is also timed
(a store-backed study's Stage I), but record materialization bounds it,
so the speedup gate lives on the query path.

Timings land in ``BENCH_store.json``.  Standalone on purpose (not a
pytest-benchmark case), and CI runs the same script in ``--smoke`` mode
as a cheap identity check::

    PYTHONPATH=src python benchmarks/bench_store.py            # full timing
    PYTHONPATH=src python benchmarks/bench_store.py --smoke    # CI check
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.core import DeltaStudy
from repro.datasets import synthesize_delta
from repro.pipeline import FileSetSource, extract_records
from repro.store import EventStore, Query

#: The acceptance gate: warm store reads must beat cold re-parsing by
#: at least this factor (overridable; skipped under ``--smoke``).
DEFAULT_MIN_SPEEDUP = 5.0


def _parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale (fraction of the 855-day window)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--segment-records", type=int, default=50_000)
    parser.add_argument("--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
                        help="fail unless warm/cold speedup reaches this")
    parser.add_argument("--output", default="BENCH_store.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny dataset for CI: verifies identity, "
                        "skips the speedup gate")
    return parser.parse_args(argv)


def _stream_digest(records) -> str:
    """Order-sensitive digest of a record stream."""
    digest = hashlib.sha256()
    for r in records:
        digest.update(
            f"{r.time!r}|{r.node_id}|{r.pci_bus}|{r.xid}|{r.pid}|{r.message}\n".encode()
        )
    return digest.hexdigest()


def _stats_of(study: DeltaStudy) -> dict:
    stats = study.error_statistics()
    return {
        "n_errors": stats.total_count,
        "overall_mtbe_node_hours": stats.overall_mtbe_node_hours(),
        "counts_by_xid": {str(x): c for x, c in sorted(stats.counts().items())},
    }


def main(argv=None) -> int:
    args = _parse_args(argv)
    if args.smoke:
        args.scale = min(args.scale, 0.01)

    tmp = tempfile.TemporaryDirectory(prefix="bench-store-")
    logs_dir = Path(tmp.name) / "logs"
    store_dir = Path(tmp.name) / "events"
    print(f"synthesizing dataset (scale={args.scale}, seed={args.seed})...")
    t0 = time.perf_counter()
    dataset = synthesize_delta(scale=args.scale, seed=args.seed)
    paths = dataset.write_logs(logs_dir)
    print(f"  wrote {len(paths)} node log files in "
          f"{time.perf_counter() - t0:.1f} s")
    window_hours = dataset.window_seconds / 3600.0
    n_nodes = dataset.reference_node_count

    # Warm the page cache so the cold leg is not charged for cold I/O —
    # "cold" here means *no store*, not an empty cache.
    extract_records(FileSetSource(logs_dir), workers=1)

    # Cold path: every read re-parses the raw log directory.
    t0 = time.perf_counter()
    raw_stream = extract_records(FileSetSource(logs_dir), workers=1)
    cold_seconds = time.perf_counter() - t0
    raw_digest = _stream_digest(raw_stream)

    # One-time build (reported, not part of the read-path comparison).
    t0 = time.perf_counter()
    store = EventStore.create(store_dir)
    store.ingest(FileSetSource(logs_dir), workers=1,
                 segment_records=args.segment_records)
    build_seconds = time.perf_counter() - t0

    # Full-scan replay: a store-backed study's Stage I.  Informational
    # timing; the identity check is the contract.
    t0 = time.perf_counter()
    store_stream = list(store.query())
    replay_seconds = time.perf_counter() - t0
    store_digest = _stream_digest(store_stream)

    streams_identical = (
        store_stream == raw_stream and store_digest == raw_digest
    )

    # The representative query: the most frequent XID over the tail half
    # of the window (the paper's Table-1 slice shape).
    span = store.time_span
    midpoint = (span[0] + span[1]) / 2.0
    xid_counts: dict = {}
    for r in store_stream:
        xid_counts[r.xid] = xid_counts.get(r.xid, 0) + 1
    top_xid = max(xid_counts, key=xid_counts.get)
    representative = Query(xids={top_xid}, time_range=(midpoint, None))
    _, pruned = store.plan(representative)
    del store_stream

    # Cold answer: nothing to consult but the raw logs — re-parse the
    # whole directory, then filter.
    t0 = time.perf_counter()
    cold_answer = [
        r
        for r in extract_records(FileSetSource(logs_dir), workers=1)
        if r.xid == top_xid and r.time >= midpoint
    ]
    cold_query_seconds = time.perf_counter() - t0

    # Warm answer: zone maps prune segments, the residual predicate runs
    # vectorized, only matching rows materialize.
    t0 = time.perf_counter()
    warm_answer = list(store.query(representative))
    warm_query_seconds = time.perf_counter() - t0
    query_identical = warm_answer == cold_answer

    # Study statistics: store-backed vs raw-log, must match exactly.
    cold_stats = _stats_of(DeltaStudy(
        FileSetSource(logs_dir), window_hours=window_hours, n_nodes=n_nodes
    ))
    warm_stats = _stats_of(DeltaStudy.from_store(
        store, window_hours=window_hours, n_nodes=n_nodes
    ))
    stats_identical = cold_stats == warm_stats

    identity_ok = streams_identical and stats_identical and query_identical
    speedup = (
        cold_query_seconds / warm_query_seconds if warm_query_seconds > 0 else 0.0
    )
    replay_speedup = cold_seconds / replay_seconds if replay_seconds > 0 else 0.0

    report = {
        "config": {
            "scale": args.scale,
            "seed": args.seed,
            "segment_records": args.segment_records,
            "min_speedup": args.min_speedup,
            "smoke": args.smoke,
        },
        "cpu_count": os.cpu_count(),
        "n_log_files": len(paths),
        "n_records": store.n_records,
        "n_segments": store.n_segments,
        "store_bytes": sum(s.n_bytes for s in store.manifest.segments),
        "content_hash": store.content_hash(),
        "cold_parse_seconds": round(cold_seconds, 4),
        "build_seconds": round(build_seconds, 4),
        "replay_seconds": round(replay_seconds, 4),
        "replay_speedup": round(replay_speedup, 3),
        "query": {
            "xid": top_xid,
            "time_range": [midpoint, None],
            "n_matches": len(warm_answer),
            "segments_pruned": pruned,
            "n_segments": store.n_segments,
            "cold_seconds": round(cold_query_seconds, 4),
            "warm_seconds": round(warm_query_seconds, 4),
            "identical": query_identical,
        },
        "speedup": round(speedup, 3),
        "streams_identical": streams_identical,
        "stream_digest": raw_digest,
        "stats_identical": stats_identical,
        "identity_ok": identity_ok,
        "study": {
            "n_errors": cold_stats["n_errors"],
            "overall_mtbe_node_hours": round(
                cold_stats["overall_mtbe_node_hours"], 3
            ),
        },
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print(f"store      : {store.n_records:,} records in {store.n_segments} "
          f"segments ({report['store_bytes'] / 1e6:.1f} MB)")
    print(f"cold parse : {cold_seconds:7.2f} s   (raw log directory)")
    print(f"build      : {build_seconds:7.2f} s   (one-time)")
    print(f"full replay: {replay_seconds:7.2f} s   ({replay_speedup:.2f}x)")
    print(f"query xid={top_xid} over tail half "
          f"({pruned}/{store.n_segments} segments pruned):")
    print(f"  cold     : {cold_query_seconds:7.2f} s   (re-parse + filter)")
    print(f"  warm     : {warm_query_seconds:7.2f} s   "
          f"(speedup {speedup:.2f}x)")
    print(f"streams identical: {streams_identical}  "
          f"statistics identical: {stats_identical}  "
          f"query identical: {query_identical}")
    print(f"wrote {args.output}")

    tmp.cleanup()
    if not identity_ok:
        print("ERROR: store-backed and raw-log paths diverge", file=sys.stderr)
        return 1
    if not args.smoke and speedup < args.min_speedup:
        print(f"ERROR: warm/cold speedup {speedup:.2f}x below the "
              f"{args.min_speedup:.1f}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
