"""Section 4.3: persistence distributions and lost-GPU-hours accounting."""

import pytest

from repro.core.persistence import PersistenceAnalyzer
from repro.faults.xid import Xid


@pytest.fixture(scope="module")
def analyzer(bench_study):
    return bench_study.persistence()


def test_bench_persistence_analysis(benchmark, bench_study):
    errors = bench_study.error_statistics().errors

    def analyze():
        a = PersistenceAnalyzer(errors)
        return a.total_lost_gpu_hours(), a.tail_analysis()

    total, tail = benchmark(analyze)
    assert total > 0


def test_tail_carries_most_of_the_loss(analyzer):
    # Paper: errors persisting beyond their P95 carry 91% of lost GPU-hours.
    analysis = analyzer.tail_analysis()
    assert analysis.tail_share > 0.55


def test_loss_dominated_by_uncontained(analyzer):
    per_code = {
        xid: summary.total for xid, summary in analyzer.summaries().items()
    }
    total = sum(per_code.values())
    assert per_code[int(Xid.UNCONTAINED)] / total > 0.9


def test_watchlist_is_all_uncontained(analyzer):
    # The SRE watchlist (longest persistences) should surface the offender.
    longest = analyzer.longest(10)
    assert all(e.xid == int(Xid.UNCONTAINED) for e in longest)
    assert longest[0].persistence > 3_600.0


def test_above_threshold_alerting(analyzer):
    day_long = analyzer.above_threshold(12 * 3600.0)
    hour_long = analyzer.above_threshold(3_600.0)
    assert len(day_long) < len(hour_long)


def test_burst_volume_like_paper_narrative(analyzer):
    # "over a million duplicated log entries" at full scale: raw-line volume
    # for uncontained errors dwarfs every other code's.
    mean95, max95 = analyzer.burstiness(int(Xid.UNCONTAINED))
    mean31, _ = analyzer.burstiness(int(Xid.MMU))
    assert mean95 > 20 * mean31
    assert max95 > 1_000
