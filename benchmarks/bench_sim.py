"""Benchmark the what-if sweep runner: serial vs parallel wall time.

Runs one fixed Monte-Carlo sweep twice — ``workers=1`` and ``workers=K`` —
verifies the aggregates are bit-for-bit identical (the runner's determinism
contract), and writes the timings to ``BENCH_sim.json``.

Standalone on purpose (not a pytest-benchmark case): process-pool timing
wants a quiet interpreter, and CI runs the same script in ``--smoke`` mode
as a cheap shape check::

    PYTHONPATH=src python benchmarks/bench_sim.py            # full timing
    PYTHONPATH=src python benchmarks/bench_sim.py --smoke    # CI shape check
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time

from repro.sim import SweepConfig, run_sweep


def _parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="a100-256")
    parser.add_argument("--policy", default="spare:2")
    parser.add_argument("--replicas", type=int, default=24)
    parser.add_argument("--workers", type=int,
                        default=max(2, min(4, os.cpu_count() or 1)))
    parser.add_argument("--gpus", type=int, default=128)
    parser.add_argument("--useful-hours", type=float, default=48.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_sim.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep for CI: verifies output shape and "
                        "determinism, skips the speedup assertion")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = _parse_args(argv)
    if args.smoke:
        args.replicas, args.gpus, args.useful_hours = 4, 32, 12.0
        args.workers = min(args.workers, 2)
    config = SweepConfig(
        scenario=args.scenario,
        policy=args.policy,
        replicas=args.replicas,
        seed=args.seed,
        n_gpus=args.gpus,
        useful_hours=args.useful_hours,
    )

    # Warm the per-process caches (placement, calibrated rates) so the
    # serial leg is not charged for one-time setup the parallel leg pays
    # inside its workers anyway.
    run_sweep(dataclasses.replace(config, replicas=1))

    t0 = time.perf_counter()
    serial = run_sweep(config, workers=1)
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_sweep(config, workers=args.workers)
    parallel_seconds = time.perf_counter() - t0

    identical = serial.runs == parallel.runs and json.dumps(
        serial.aggregate, sort_keys=True
    ) == json.dumps(parallel.aggregate, sort_keys=True)
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0

    report = {
        "config": {
            "scenario": config.scenario,
            "policy": config.policy,
            "replicas": config.replicas,
            "seed": config.seed,
            "n_gpus": config.n_gpus,
            "useful_hours": config.useful_hours,
            "workers": args.workers,
            "smoke": args.smoke,
        },
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(speedup, 3),
        "aggregates_identical": identical,
        "aggregate": serial.aggregate,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print(f"sweep: {config.scenario} / {config.policy} "
          f"x{config.replicas} replicas")
    print(f"serial   : {serial_seconds:7.2f} s")
    print(f"parallel : {parallel_seconds:7.2f} s  "
          f"({args.workers} workers, speedup {speedup:.2f}x)")
    print(f"aggregates identical: {identical}")
    print(f"wrote {args.output}")

    if not identical:
        print("ERROR: serial and parallel aggregates differ", file=sys.stderr)
        return 1
    if not args.smoke and args.workers > 1 and speedup <= 1.0:
        # On a single-core box the pool can only add overhead; flag it
        # rather than fail so CI hosts of any width can run this.
        print(f"WARNING: no parallel speedup measured "
              f"(cpu_count={os.cpu_count()})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
