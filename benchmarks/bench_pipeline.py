"""Benchmark the staged ingestion pipeline: serial vs sharded extraction.

Synthesizes a dataset, writes it out as per-node log files (the paper's
collection layout), then runs Stage I+II twice through the unified
pipeline — ``workers=1`` and ``workers=K`` — and verifies the identity
contract end to end:

* the extracted record streams are identical, order included;
* both paths coalesce to the same error count;
* the resulting ``StudyReport`` statistics (overall and per-XID MTBE)
  match exactly.

Timings land in ``BENCH_pipeline.json``.  Standalone on purpose (not a
pytest-benchmark case): process-pool timing wants a quiet interpreter,
and CI runs the same script in ``--smoke`` mode as a cheap identity
check::

    PYTHONPATH=src python benchmarks/bench_pipeline.py            # full timing
    PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke    # CI check
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.core import DeltaStudy
from repro.datasets import synthesize_delta
from repro.pipeline import FileSetSource, extract_records


def _parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale (1.0 = the paper's 855-day window)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int,
                        default=max(2, min(4, os.cpu_count() or 1)))
    parser.add_argument("--logs-dir", type=Path, default=None,
                        help="reuse an existing synthesized log directory "
                        "(default: synthesize into a temp dir)")
    parser.add_argument("--output", default="BENCH_pipeline.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny dataset for CI: verifies serial/parallel "
                        "identity, skips the speedup expectation")
    return parser.parse_args(argv)


def _stream_digest(records) -> str:
    """Order-sensitive digest of a record stream."""
    digest = hashlib.sha256()
    for r in records:
        digest.update(
            f"{r.time!r}|{r.node_id}|{r.pci_bus}|{r.xid}|{r.pid}|{r.message}\n".encode()
        )
    return digest.hexdigest()


def _study_stats(source, window_hours: float, n_nodes: int, workers: int):
    """Stage I-III headline numbers for one extraction configuration."""
    study = DeltaStudy(
        source, window_hours=window_hours, n_nodes=n_nodes, workers=workers
    )
    stats = study.error_statistics()
    return {
        "n_errors": stats.total_count,
        "overall_mtbe_node_hours": stats.overall_mtbe_node_hours(),
        "counts_by_xid": {str(x): c for x, c in sorted(stats.counts().items())},
    }


def main(argv=None) -> int:
    args = _parse_args(argv)
    if args.smoke:
        args.scale = min(args.scale, 0.01)
        args.workers = min(args.workers, 2)

    tmp = None
    if args.logs_dir is not None:
        logs_dir = args.logs_dir
        dataset = synthesize_delta(scale=args.scale, seed=args.seed)
    else:
        tmp = tempfile.TemporaryDirectory(prefix="bench-pipeline-")
        logs_dir = Path(tmp.name) / "logs"
        print(f"synthesizing dataset (scale={args.scale}, seed={args.seed})...")
        t0 = time.perf_counter()
        dataset = synthesize_delta(scale=args.scale, seed=args.seed)
        paths = dataset.write_logs(logs_dir)
        print(f"  wrote {len(paths)} node log files in "
              f"{time.perf_counter() - t0:.1f} s")

    window_hours = dataset.window_seconds / 3600.0
    n_nodes = dataset.reference_node_count

    # Warm the page cache so the serial leg is not charged for cold I/O.
    extract_records(FileSetSource(logs_dir), workers=1)

    t0 = time.perf_counter()
    serial_records = extract_records(FileSetSource(logs_dir), workers=1)
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel_records = extract_records(FileSetSource(logs_dir), workers=args.workers)
    parallel_seconds = time.perf_counter() - t0

    streams_identical = serial_records == parallel_records
    serial_digest = _stream_digest(serial_records)
    parallel_digest = _stream_digest(parallel_records)
    del serial_records, parallel_records

    serial_stats = _study_stats(
        FileSetSource(logs_dir), window_hours, n_nodes, workers=1
    )
    parallel_stats = _study_stats(
        FileSetSource(logs_dir), window_hours, n_nodes, workers=args.workers
    )
    stats_identical = serial_stats == parallel_stats
    identical = (
        streams_identical and serial_digest == parallel_digest and stats_identical
    )
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0

    report = {
        "config": {
            "scale": args.scale,
            "seed": args.seed,
            "workers": args.workers,
            "smoke": args.smoke,
        },
        "cpu_count": os.cpu_count(),
        "n_log_files": len(FileSetSource(logs_dir).paths),
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(speedup, 3),
        "streams_identical": streams_identical,
        "stream_digest": serial_digest,
        "stats_identical": stats_identical,
        "identity_ok": identical,
        "study": {
            "n_errors": serial_stats["n_errors"],
            "overall_mtbe_node_hours": round(
                serial_stats["overall_mtbe_node_hours"], 3
            ),
        },
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print(f"extraction: {report['n_log_files']} files, "
          f"{serial_stats['n_errors']:,} coalesced errors")
    print(f"serial   : {serial_seconds:7.2f} s")
    print(f"parallel : {parallel_seconds:7.2f} s  "
          f"({args.workers} workers, speedup {speedup:.2f}x)")
    print(f"record streams identical: {streams_identical}  "
          f"study statistics identical: {stats_identical}")
    print(f"wrote {args.output}")

    if tmp is not None:
        tmp.cleanup()
    if not identical:
        print("ERROR: serial and parallel paths diverge", file=sys.stderr)
        return 1
    if not args.smoke and args.workers > 1 and speedup <= 1.0:
        # On a single-core box the pool can only add overhead; flag it
        # rather than fail so CI hosts of any width can run this.
        print(f"WARNING: no parallel speedup measured "
              f"(cpu_count={os.cpu_count()})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
