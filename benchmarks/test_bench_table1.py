"""Table 1: per-XID error statistics (counts, MTBE, persistence).

Regenerates the paper's central table and checks the reproduction *shape*:
per-code counts track the calibration targets, the overall per-node MTBE
lands near 67 node-hours, and GPU memory beats GPU hardware on MTBE by well
over an order of magnitude.
"""

import pytest

from repro.core.mtbe import ErrorStatistics
from repro.core.report import render_table1
from repro.faults.calibration import AMPERE_CALIBRATION
from repro.faults.xid import Xid


@pytest.fixture(scope="module")
def stats(bench_study):
    return bench_study.error_statistics()


def test_bench_table1_statistics(benchmark, bench_study, bench_scale, report_sink):
    errors = bench_study.errors

    def build():
        return ErrorStatistics(
            errors, bench_study.window_hours, bench_study.n_nodes
        ).table1_rows()

    rows = benchmark(build)
    assert len(rows) == 10  # the ten Table-1 codes

    stats = bench_study.error_statistics()
    report_sink.append(render_table1(stats, AMPERE_CALIBRATION, scale=bench_scale))


def test_counts_track_paper(stats, bench_scale):
    targets = AMPERE_CALIBRATION.scaled_counts(bench_scale)
    for xid, target in targets.items():
        if target < 30:
            continue  # rare codes are dominated by sampling noise off full scale
        measured = stats.count(int(xid))
        assert measured == pytest.approx(target, rel=0.15), xid


def test_overall_mtbe_near_67_node_hours(stats):
    assert stats.overall_mtbe_node_hours() == pytest.approx(67.0, rel=0.12)


def test_uncontained_dominates_then_mmu(stats):
    # Paper Section 4.1 (i): uncontained ~61%, MMU ~30%, NVLink ~5%, GSP ~3%.
    total = stats.total_count
    assert stats.count(int(Xid.UNCONTAINED)) / total == pytest.approx(0.61, abs=0.06)
    assert stats.count(int(Xid.MMU)) / total == pytest.approx(0.30, abs=0.05)
    assert stats.count(int(Xid.NVLINK)) / total == pytest.approx(0.05, abs=0.02)
    assert stats.count(int(Xid.GSP)) / total == pytest.approx(0.034, abs=0.015)


def test_memory_over_30x_more_reliable(stats):
    # The headline comparison; "over 30x" with sampling slack.
    assert stats.memory_vs_hardware_ratio() > 15


def test_persistence_shape_per_code(stats):
    for xid, cal in AMPERE_CALIBRATION.xids.items():
        summary = stats.persistence_summary(int(xid))
        if summary.count < 50:
            continue
        assert summary.p50 == pytest.approx(cal.paper_persistence_p50, rel=0.35), xid
        assert summary.mean == pytest.approx(cal.paper_persistence_mean, rel=0.45), xid


def test_uncontained_mean_exceeds_p95(stats):
    summary = stats.persistence_summary(int(Xid.UNCONTAINED))
    assert summary.mean > summary.p95
