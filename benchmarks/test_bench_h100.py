"""Section 6: emerging H100 errors."""

import pytest

from repro.core.h100 import H100Analyzer
from repro.faults.xid import Xid


@pytest.fixture(scope="module")
def report(bench_h100_study):
    return H100Analyzer(bench_h100_study.error_statistics()).report()


def test_bench_h100_analysis(benchmark, bench_h100_study, report_sink):
    stats = bench_h100_study.error_statistics()
    result = benchmark(lambda: H100Analyzer(stats).report())
    report_sink.append(
        "Section 6 - emerging H100 errors\n"
        f"  counts: {result.counts}  (paper: 18 MMU, 10 DBE, 5 RRF, 9 contained, 70 XID-136)\n"
        f"  MTBE: {result.mtbe_node_hours:,.0f} node-hours  (paper 4,114)\n"
        f"  remap anomaly (DBE/RRF w/o RRE): {result.has_remap_anomaly}"
    )


def test_mtbe_4114_node_hours(report):
    assert report.mtbe_node_hours == pytest.approx(4_114, rel=0.1)


def test_event_mix_matches_section6(report):
    assert report.counts.get(int(Xid.MMU), 0) == pytest.approx(18, abs=6)
    assert report.dbe_count == pytest.approx(10, abs=3)
    assert report.rrf_count == pytest.approx(5, abs=3)
    assert report.counts.get(int(Xid.CONTAINED), 0) == pytest.approx(9, abs=3)
    assert report.xid136_count == pytest.approx(70, abs=8)


def test_xid136_most_frequent(report):
    assert report.xid136_share > 0.5


def test_remap_anomaly(report):
    assert report.has_remap_anomaly


def test_h100_mtbe_far_above_ampere(report, bench_study):
    ampere = bench_study.error_statistics().overall_mtbe_node_hours()
    # "significantly higher than A100 and A40" — ~60x in the paper.
    assert report.mtbe_node_hours > 20 * ampere
