"""Ablation: the Ampere memory-resilience stack, mechanism by mechanism.

Drives the mechanistic :class:`~repro.memory.device.GpuMemory` model (SECDED
-> row remap -> containment -> offlining) under a stream of injected faults
and measures what each Figure-3 mechanism buys — the paper's Section 2.3
capability split between A40 and A100/H100 made quantitative.
"""

import numpy as np
import pytest

from repro.memory.device import GpuMemory, MemoryEventKind
from repro.util.tables import Table


def _inject_campaign(memory: GpuMemory, n_faults: int, seed: int,
                     dbe_fraction: float = 0.35):
    """Inject a fault campaign; return events + outcome tallies.

    A fraction of rows sit in spare-exhausted banks (defective parts), so
    remaps fail at a controlled rate, exercising the full tree.
    """
    rng = np.random.default_rng(seed)
    # Pre-exhaust half the banks: their rows RRF on remap (the paper's 0.5
    # remap success rate came from exactly such partially-spent parts).
    for bank in range(0, memory.remapper.n_banks, 2):
        memory.remapper.exhaust_bank(bank)

    events = []
    resets = 0
    for i in range(n_faults):
        address = (int(rng.integers(0, memory.remapper.n_banks)), 20_000 + i, 0)
        memory.write(address, int(rng.integers(0, 1 << 63)))
        if rng.random() < dbe_fraction:
            flips = [int(x) for x in rng.choice(72, size=2, replace=False)]
        else:
            flips = [int(rng.integers(0, 72))]
        memory.inject_bit_flips(address, flips)
        _, new_events = memory.read(address, rng, owning_pid=1_000 + i)
        events.extend(new_events)
        if not memory.operable:
            resets += 1
            memory.reset()
    return events, resets


@pytest.fixture(scope="module")
def a100_results():
    memory = GpuMemory(supports_containment=True, containment_success_prob=0.43)
    events, resets = _inject_campaign(memory, 600, seed=11)
    return memory, events, resets


@pytest.fixture(scope="module")
def a40_results():
    memory = GpuMemory(supports_containment=False)
    events, resets = _inject_campaign(memory, 600, seed=11)
    return memory, events, resets


def test_bench_fault_campaign(benchmark):
    def campaign():
        memory = GpuMemory()
        return _inject_campaign(memory, 150, seed=3)

    events, _ = benchmark.pedantic(campaign, rounds=3, iterations=1)
    assert events


def test_sbes_never_logged(a100_results):
    memory, events, _ = a100_results
    assert memory.sbe_corrected > 100
    # The event stream carries no SBE kind at all — matching the paper's
    # "SBEs are not logged as they are automatically corrected by ECC".
    assert all(e.kind is not None for e in events)


def test_figure3_tree_shape_on_a100(a100_results, report_sink):
    _, events, resets = a100_results
    counts = {kind: 0 for kind in MemoryEventKind}
    for event in events:
        counts[event.kind] += 1
    assert counts[MemoryEventKind.DBE] > 100
    rre = counts[MemoryEventKind.RRE]
    rrf = counts[MemoryEventKind.RRF]
    assert rre / (rre + rrf) == pytest.approx(0.5, abs=0.1)  # half the banks spent
    contained = counts[MemoryEventKind.CONTAINED]
    uncontained = counts[MemoryEventKind.UNCONTAINED]
    assert contained / (contained + uncontained) == pytest.approx(0.43, abs=0.12)

    table = Table(
        "Memory ablation - mechanistic Figure-3 event mix (A100 profile)",
        ["DBE", "RRE", "RRF", "Contained", "Uncontained", "GPU resets"],
    )
    table.add_row(
        counts[MemoryEventKind.DBE], rre, rrf, contained, uncontained, resets
    )
    report_sink.append(table.render())


def test_a40_needs_far_more_resets(a100_results, a40_results, report_sink):
    _, _, a100_resets = a100_results
    _, a40_events, a40_resets = a40_results
    # Without containment every remap failure is a GPU reset; with it,
    # ~43% are absorbed. The gap is the paper's "mitigate the impact of a
    # DBE ... 70.6% of the time" capability, isolated.
    assert a40_resets > a100_resets * 1.3
    kinds = {e.kind for e in a40_events}
    assert MemoryEventKind.CONTAINED not in kinds
    assert MemoryEventKind.UNCONTAINED not in kinds
    report_sink.append(
        f"Memory ablation - GPU resets needed: A40-profile {a40_resets} vs "
        f"A100-profile {a100_resets} over the same 600-fault campaign"
    )


def test_mechanistic_alleviation_near_paper(a100_results):
    """Share of uncorrectable faults that left the GPU operable: RRE
    successes plus contained RRFs — the paper's 70.6%."""
    _, events, _ = a100_results
    dbe = sum(1 for e in events if e.kind is MemoryEventKind.DBE)
    rre_after_dbe = sum(1 for e in events if e.kind is MemoryEventKind.RRE)
    contained = sum(1 for e in events if e.kind is MemoryEventKind.CONTAINED)
    alleviated = (rre_after_dbe + contained) / max(dbe, 1)
    assert alleviated == pytest.approx(0.70, abs=0.15)


def test_offlined_pages_accumulate(a100_results):
    memory, _, _ = a100_results
    assert memory.containment.offlined_pages > 10
