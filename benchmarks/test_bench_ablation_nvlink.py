"""Ablation: NVLink CRC-retry on vs off.

Paper finding (iii) attributes the 34% of NVLink-error jobs that complete
to CRC detection + packet replay.  The mechanistic link model shows the
mechanism directly: with replay, detected link errors are invisible to
jobs; without it, every detected error is a job failure.
"""

import pytest

from repro.nvlink.link import LinkConfig
from repro.nvlink.transfer import simulate_collective
from repro.util.tables import Table

BER = 1e-5
N_JOBS = 80


@pytest.fixture(scope="module")
def with_retry():
    return simulate_collective(
        config=LinkConfig(bit_error_rate=BER), n_jobs=N_JOBS, seed=5
    )


@pytest.fixture(scope="module")
def without_retry():
    return simulate_collective(
        config=LinkConfig(bit_error_rate=BER, retry_enabled=False),
        n_jobs=N_JOBS,
        seed=5,
    )


def test_bench_collective_simulation(benchmark):
    result = benchmark.pedantic(
        lambda: simulate_collective(
            config=LinkConfig(bit_error_rate=BER), n_jobs=20, seed=5
        ),
        rounds=3,
        iterations=1,
    )
    assert result.jobs_run == 20


def test_retry_absorbs_detected_errors(with_retry, report_sink):
    assert with_retry.total_crc_errors > 50
    assert with_retry.survival_rate == 1.0
    report_sink.append(_render(with_retry, "CRC + replay (production NVLink)"))


def test_no_retry_turns_every_error_fatal(without_retry, report_sink):
    assert without_retry.survival_rate < 0.6
    assert without_retry.jobs_with_errors_that_survived == 0.0
    report_sink.append(_render(without_retry, "CRC only, no replay (ablation)"))


def test_ablation_gap_is_the_papers_mechanism(with_retry, without_retry):
    # Jobs seeing link errors: all survive with replay, none without.
    assert with_retry.jobs_with_errors_that_survived == 1.0
    assert without_retry.jobs_with_errors_that_survived == 0.0


def test_replay_overhead_is_modest(with_retry):
    # Retries cost bandwidth, not jobs.
    assert 0.95 < with_retry.mean_goodput <= 1.0


def test_degraded_link_is_fatal_despite_retry():
    # Replay is not magic: a badly degraded link exhausts its budget — the
    # 66% of NVLink-error jobs that *did* fail in the paper.
    result = simulate_collective(
        config=LinkConfig(bit_error_rate=5e-3, max_replays=2), n_jobs=40, seed=5
    )
    assert result.survival_rate < 0.4


def _render(result, label: str) -> str:
    table = Table(
        f"NVLink ablation - {label}",
        ["Jobs", "Survived", "CRC errors", "Replays", "Fatal", "Goodput"],
    )
    table.add_row(
        result.jobs_run,
        result.jobs_survived,
        result.total_crc_errors,
        result.total_replays,
        result.total_fatal,
        result.mean_goodput,
    )
    return table.render()
