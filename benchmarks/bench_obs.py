"""Benchmark the observability layer's overhead on the pipeline path.

The ``repro.obs`` contract is that instrumentation costs (almost)
nothing when disabled and never changes results when enabled.  This
benchmark measures both claims on the Stage-I extraction path — the
hottest instrumented loop (one ``span_iter`` item per record, one span
per shard):

* **stubbed** — ``obs.span``/``obs.add``/``obs.span_iter`` monkeypatched
  to bare passthroughs, as if the instrumentation were never written;
* **disabled** — the real module with no active tracer (the default
  every user runs);
* **enabled**  — a live tracer writing spans into a temp directory.

The no-op overhead (disabled vs stubbed) gates at < 2%; the runs are
interleaved and the minimum per mode is kept, which cancels cache and
scheduler noise.  Identity is also checked: all three modes must extract
byte-identical record streams.  Timings land in ``BENCH_obs.json``::

    PYTHONPATH=src python benchmarks/bench_obs.py            # full timing
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke    # CI check
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.datasets import synthesize_delta
from repro.pipeline import FileSetSource, extract_records

#: The disabled path may cost at most this fraction over no
#: instrumentation at all.
MAX_NOOP_OVERHEAD = 0.02


def _parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2,
                        help="dataset scale (1.0 = the paper's 855-day window)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--reps", type=int, default=5,
                        help="interleaved repetitions per mode (min kept)")
    parser.add_argument("--logs-dir", type=Path, default=None,
                        help="reuse an existing synthesized log directory "
                        "(default: synthesize into a temp dir)")
    parser.add_argument("--output", default="BENCH_obs.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny dataset for CI: identity still gates, "
                        "the overhead bound becomes a warning (too noisy "
                        "at smoke scale to fail on)")
    return parser.parse_args(argv)


def _stream_digest(records) -> str:
    digest = hashlib.sha256()
    for r in records:
        digest.update(
            f"{r.time!r}|{r.node_id}|{r.pci_bus}|{r.xid}|{r.pid}|{r.message}\n".encode()
        )
    return digest.hexdigest()


class _StubbedObs:
    """Temporarily strip the instrumentation down to nothing at all."""

    def __enter__(self):
        self._span, self._add = obs.span, obs.add
        self._span_iter = obs.span_iter
        obs.span = lambda name, **attrs: obs.NULL_SPAN
        obs.add = lambda name, value=1: None
        obs.span_iter = (
            lambda name, iterable, counter=None, **attrs: iter(iterable)
        )
        return self

    def __exit__(self, *exc):
        obs.span, obs.add, obs.span_iter = (
            self._span, self._add, self._span_iter
        )
        return False


def _run_extraction(logs_dir):
    t0 = time.perf_counter()
    records = extract_records(FileSetSource(logs_dir), workers=1)
    elapsed = time.perf_counter() - t0
    return elapsed, len(records), _stream_digest(records)


def main(argv=None) -> int:
    args = _parse_args(argv)
    if args.smoke:
        args.scale = min(args.scale, 0.01)
        args.reps = min(args.reps, 3)

    tmp = None
    if args.logs_dir is not None:
        logs_dir = args.logs_dir
    else:
        tmp = tempfile.TemporaryDirectory(prefix="bench-obs-")
        logs_dir = Path(tmp.name) / "logs"
        print(f"synthesizing dataset (scale={args.scale}, seed={args.seed})...")
        t0 = time.perf_counter()
        dataset = synthesize_delta(scale=args.scale, seed=args.seed)
        paths = dataset.write_logs(logs_dir)
        print(f"  wrote {len(paths)} node log files in "
              f"{time.perf_counter() - t0:.1f} s")

    # Warm the page cache so mode order does not charge anyone for cold I/O.
    _run_extraction(logs_dir)

    times = {"stubbed": [], "disabled": [], "enabled": []}
    digests = {}
    counts = {}
    trace_tmp = tempfile.TemporaryDirectory(prefix="bench-obs-trace-")
    for rep in range(args.reps):
        with _StubbedObs():
            elapsed, n, digest = _run_extraction(logs_dir)
        times["stubbed"].append(elapsed)
        digests.setdefault("stubbed", digest)
        counts["stubbed"] = n

        elapsed, n, digest = _run_extraction(logs_dir)
        times["disabled"].append(elapsed)
        digests.setdefault("disabled", digest)
        counts["disabled"] = n

        obs.activate(Path(trace_tmp.name) / f"rep{rep}", label="bench")
        try:
            elapsed, n, digest = _run_extraction(logs_dir)
        finally:
            obs.deactivate()
        times["enabled"].append(elapsed)
        digests.setdefault("enabled", digest)
        counts["enabled"] = n
        print(f"  rep {rep + 1}/{args.reps}: "
              f"stubbed {times['stubbed'][-1]:.3f} s  "
              f"disabled {times['disabled'][-1]:.3f} s  "
              f"enabled {times['enabled'][-1]:.3f} s")

    best = {mode: min(samples) for mode, samples in times.items()}
    overhead_noop = (best["disabled"] - best["stubbed"]) / best["stubbed"]
    overhead_enabled = (best["enabled"] - best["stubbed"]) / best["stubbed"]
    identity_ok = len(set(digests.values())) == 1

    report = {
        "config": {
            "scale": args.scale,
            "seed": args.seed,
            "reps": args.reps,
            "smoke": args.smoke,
        },
        "cpu_count": os.cpu_count(),
        "n_records": counts["disabled"],
        "seconds": {
            mode: [round(s, 4) for s in samples]
            for mode, samples in times.items()
        },
        "best_seconds": {m: round(s, 4) for m, s in best.items()},
        "overhead_noop": round(overhead_noop, 4),
        "overhead_enabled": round(overhead_enabled, 4),
        "max_noop_overhead": MAX_NOOP_OVERHEAD,
        "identity_ok": identity_ok,
        "stream_digest": digests["disabled"],
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print(f"extraction of {counts['disabled']:,} records (best of "
          f"{args.reps}):")
    print(f"  stubbed  : {best['stubbed']:7.3f} s   (no instrumentation)")
    print(f"  disabled : {best['disabled']:7.3f} s   "
          f"(no-op overhead {overhead_noop:+.2%})")
    print(f"  enabled  : {best['enabled']:7.3f} s   "
          f"(tracing overhead {overhead_enabled:+.2%})")
    print(f"record streams identical across modes: {identity_ok}")
    print(f"wrote {args.output}")

    trace_tmp.cleanup()
    if tmp is not None:
        tmp.cleanup()
    if not identity_ok:
        print("ERROR: tracing changed the extracted record stream",
              file=sys.stderr)
        return 1
    if overhead_noop > MAX_NOOP_OVERHEAD:
        message = (f"no-op overhead {overhead_noop:.2%} exceeds the "
                   f"{MAX_NOOP_OVERHEAD:.0%} bound")
        if args.smoke:
            print(f"WARNING: {message} (smoke scale is noisy; "
                  "not failing)", file=sys.stderr)
        else:
            print(f"ERROR: {message}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
