"""Benchmark harness fixtures.

Every benchmark regenerates one of the paper's tables or figures from a
shared synthetic dataset and prints the paper-vs-measured rows (run with
``pytest benchmarks/ --benchmark-only -s`` to see them; EXPERIMENTS.md holds
a captured full-scale run).  Timings measure the analysis stages themselves.

``REPRO_BENCH_SCALE`` (default 0.1) selects the window scale; 1.0 reproduces
paper-scale totals at a few minutes of generation time.
"""

from __future__ import annotations

import os

import pytest

from repro.core import DeltaStudy
from repro.datasets import synthesize_delta, synthesize_h100

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))


def pytest_report_header(config):
    return f"repro benchmarks: scale={BENCH_SCALE}, seed={BENCH_SEED}"


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_dataset():
    return synthesize_delta(scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_study(bench_dataset):
    study = DeltaStudy.from_dataset(bench_dataset)
    study.errors  # run Stage I+II once up front
    return study


@pytest.fixture(scope="session")
def bench_h100_study():
    dataset = synthesize_h100(seed=BENCH_SEED)
    study = DeltaStudy.from_dataset(dataset)
    study.errors
    return study


@pytest.fixture(scope="session")
def report_sink():
    """Collect rendered reports; echoed at session end for -s runs."""
    chunks: list[str] = []
    yield chunks
    if chunks:
        print("\n\n" + "\n\n".join(chunks))
