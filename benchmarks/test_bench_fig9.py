"""Figure 9: elapsed-time distributions, errors-vs-duration, unavailability."""

import pytest

from repro.core.report import render_figure9


@pytest.fixture(scope="module")
def impact(bench_study):
    analyzer = bench_study.job_impact()
    analyzer.classify_jobs()
    return analyzer


@pytest.fixture(scope="module")
def availability(bench_study):
    return bench_study.availability()


def test_bench_figure9_renders(benchmark, impact, availability, report_sink):
    text = benchmark.pedantic(
        lambda: render_figure9(impact, availability), rounds=3, iterations=1
    )
    report_sink.append(text)


class TestFigure9a:
    def test_failures_prevalent_in_short_jobs(self, impact):
        histogram = impact.elapsed_histogram()
        short_failed = sum(histogram.gpu_failed[:4])  # < 1,000 minutes
        long_failed = sum(histogram.gpu_failed[4:])
        assert short_failed > 3 * max(long_failed, 1)

    def test_lost_node_hours_order_of_magnitude(self, impact, bench_scale):
        lost = impact.lost_node_hours()
        # Paper: ~7,500 node-hours; tail-dominated, so wide tolerance.
        assert 0.2 * 7_500 * bench_scale < lost < 6 * 7_500 * bench_scale


class TestFigure9b:
    def test_long_completers_accumulate_errors(self, impact):
        series = impact.errors_vs_duration()
        completed = dict((round(mid), mean) for mid, mean in series["completed"])
        # >4,000-minute completed jobs face multiple errors yet finish.
        long_bin = series["completed"][-1][1]
        short_bin = series["completed"][0][1]
        assert long_bin > 0.5
        assert long_bin > 10 * max(short_bin, 0.01)

    def test_some_long_jobs_complete_despite_errors(self, impact):
        histogram = impact.elapsed_histogram(edges_minutes=(4_000, 50_000))
        assert histogram.completed[0] > 0


class TestFigure9c:
    def test_expected_service_time(self, availability):
        dist = availability.unavailability_distribution()
        assert dist["mean_hours"] == pytest.approx(0.3, abs=0.08)

    def test_heavy_tail_reaches_long_reboots(self, availability):
        dist = availability.unavailability_distribution()
        assert dist["max_hours"] > 5.0
        assert dist["p50_hours"] < 0.3

    def test_availability_99_5(self, availability):
        report = availability.report()
        assert report.availability == pytest.approx(0.995, abs=0.003)
        assert report.downtime_minutes_per_day == pytest.approx(7.0, abs=3.5)

    def test_total_downtime_scales(self, availability, bench_scale):
        report = availability.report()
        assert report.total_downtime_node_hours == pytest.approx(
            5_700 * bench_scale, rel=0.4
        )
