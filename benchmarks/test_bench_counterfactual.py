"""Section 5.5: counterfactual resilience improvements."""

import pytest

from repro.core.report import render_counterfactual


@pytest.fixture(scope="module")
def report(bench_study):
    return bench_study.counterfactual().analyze()


def test_bench_counterfactual(benchmark, bench_study, report_sink):
    analyzer = bench_study.counterfactual()
    result = benchmark(analyzer.analyze)
    report_sink.append(render_counterfactual(result))


def test_baseline_near_67_node_hours(report):
    assert report.baseline_mtbe_node_hours == pytest.approx(67.0, rel=0.12)


def test_removing_offenders_triples_mtbe(report):
    # Paper: 67 -> 190 node-hours (~3x).
    assert report.offender_improvement == pytest.approx(3.0, abs=0.8)
    assert report.without_offenders_mtbe_node_hours == pytest.approx(190.0, rel=0.25)


def test_hardware_exclusion_adds_roughly_16_percent(report):
    assert report.hardware_additional_improvement == pytest.approx(1.16, abs=0.14)
    assert report.without_offenders_and_hw_mtbe_node_hours == pytest.approx(
        223.0, rel=0.25
    )


def test_availability_reaches_three_nines_territory(report):
    assert report.baseline_availability == pytest.approx(0.995, abs=0.003)
    assert report.improved_availability == pytest.approx(0.9987, abs=0.0012)


def test_few_gpus_removed(report):
    # The counterfactual culls a handful of defective parts, not the fleet.
    assert 1 <= len(report.removed_gpus) <= 40
