"""Generative counterfactuals vs Section 5.5's exclusion arithmetic.

The paper's counterfactual deletes observed errors; here the *world* is
re-synthesized under modified calibrations (defective parts never shipped;
peripherals hardened) and the unchanged pipeline re-measures MTBE.  The
two routes agreeing validates the paper's exclusion-based reasoning.
"""

import pytest

from repro.cluster import build_delta_cluster
from repro.core import DeltaStudy
from repro.datasets import DeltaDatasetConfig, synthesize_delta
from repro.faults import AMPERE_CALIBRATION
from repro.faults.variants import burned_in_profile, hardened_peripherals_profile
from repro.util.tables import Table

SCALE = 0.1
SEED = 17


def _measure(profile):
    dataset = synthesize_delta(
        scale=SCALE,
        seed=SEED,
        profile=profile,
        config=DeltaDatasetConfig(scale=SCALE, seed=SEED, with_jobs=False),
        cluster=build_delta_cluster(),
    )
    study = DeltaStudy.from_dataset(dataset)
    return study.error_statistics().overall_mtbe_node_hours()


@pytest.fixture(scope="module")
def measured():
    return {
        "baseline": _measure(AMPERE_CALIBRATION),
        "burned_in": _measure(burned_in_profile(AMPERE_CALIBRATION)),
        "hardened": _measure(hardened_peripherals_profile(AMPERE_CALIBRATION)),
    }


def test_bench_generative_counterfactual(benchmark):
    mtbe = benchmark.pedantic(
        lambda: _measure(hardened_peripherals_profile(AMPERE_CALIBRATION)),
        rounds=1,
        iterations=1,
    )
    assert mtbe > 100


def test_baseline_measures_67_hours(measured):
    assert measured["baseline"] == pytest.approx(67.0, rel=0.12)


def test_burn_in_matches_paper_scenario1(measured, report_sink):
    # Paper: 67 -> 190 node-hours (3x) from culling defective parts.
    assert measured["burned_in"] == pytest.approx(190.0, rel=0.25)
    table = Table(
        "Generative counterfactual - worlds re-synthesized and re-measured",
        ["World", "MTBE (node-h)", "Paper (exclusion)"],
    )
    table.add_row("as deployed", measured["baseline"], 67)
    table.add_row("defective parts never shipped", measured["burned_in"], 190)
    table.add_row("+ GSP/PMU/NVLink hardened", measured["hardened"], 223)
    report_sink.append(table.render())


def test_hardening_matches_paper_scenario2(measured):
    assert measured["hardened"] == pytest.approx(223.0, rel=0.30)
    assert measured["hardened"] > measured["burned_in"] > measured["baseline"]


def test_generative_agrees_with_analytic_exclusion(measured, bench_study):
    """The two counterfactual routes must land within ~20% of each other."""
    analytic = bench_study.counterfactual().analyze()
    assert measured["burned_in"] == pytest.approx(
        analytic.without_offenders_mtbe_node_hours, rel=0.25
    )
    assert measured["hardened"] == pytest.approx(
        analytic.without_offenders_and_hw_mtbe_node_hours, rel=0.25
    )
