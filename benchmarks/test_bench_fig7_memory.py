"""Figure 7: the DBE recovery tree (row remapping + containment).

Rare-event statistics: at sub-full scale the branch probabilities carry wide
confidence intervals, so this bench pools a dedicated larger injection for
the memory codes rather than relying on the shared dataset's handful of
DBEs.
"""

import pytest

from repro.cluster import build_delta_cluster
from repro.core.parsing import parse_syslog
from repro.core.coalesce import coalesce_errors
from repro.core.propagation import PropagationAnalyzer
from repro.core.report import render_figure7
from repro.faults import AMPERE_CALIBRATION, FaultInjector, InjectorConfig
from repro.faults.xid import Xid
from repro.syslog import render_trace


@pytest.fixture(scope="module")
def memory_propagation():
    """A 4x-paper-scale memory-chain injection for tight branch statistics."""
    cluster = build_delta_cluster()
    injector = FaultInjector(AMPERE_CALIBRATION, InjectorConfig(scale=4.0, seed=13))
    trace = injector.generate(cluster)
    memory = trace.events_of(Xid.DBE, Xid.RRE, Xid.RRF, Xid.CONTAINED, Xid.UNCONTAINED)
    # Keep only the low-volume recovery codes; drop offender-burst noise.
    keep = [e for e in memory if e.xid is not Xid.UNCONTAINED or e.chain_pos > 0]
    errors = coalesce_errors(parse_syslog(render_trace(keep, seed=13)))
    return PropagationAnalyzer(errors)


def test_bench_memory_paths(benchmark, memory_propagation, report_sink):
    paths = benchmark(memory_propagation.memory_recovery_paths)
    assert paths
    report_sink.append(render_figure7(memory_propagation))


def test_dbe_remap_success_rate(memory_propagation):
    paths = memory_propagation.memory_recovery_paths()
    assert paths["p_dbe_to_rre"] == pytest.approx(0.50, abs=0.08)


def test_rrf_containment_split(memory_propagation):
    paths = memory_propagation.memory_recovery_paths()
    assert paths["p_rrf_to_contained"] == pytest.approx(0.43, abs=0.12)
    assert paths["p_rrf_to_uncontained"] == pytest.approx(0.11, abs=0.08)


def test_dbe_alleviation_near_70_percent(memory_propagation):
    paths = memory_propagation.memory_recovery_paths()
    assert paths["dbe_alleviated"] == pytest.approx(0.706, abs=0.08)


def test_recovery_chains_are_fast(memory_propagation):
    graph = memory_propagation.analyze()
    assert graph.mean_delay(Xid.DBE, Xid.RRE) < 10.0


def test_uncontained_errors_standalone_in_shared_dataset(bench_study):
    # Figure 7's right side: uncontained errors lack succeeding errors.
    graph = bench_study.propagation().analyze()
    assert graph.probability(Xid.UNCONTAINED, Xid.UNCONTAINED) < 0.1
    assert graph.terminal_probability(Xid.UNCONTAINED) > 0.85


def test_offender_share_of_uncontained(bench_study):
    stats = bench_study.error_statistics()
    # One GPU contributed 99% of uncontained errors (Section 4.4.3).
    assert stats.offender_share(int(Xid.UNCONTAINED), k=1) > 0.95
