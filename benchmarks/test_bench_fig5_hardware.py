"""Figure 5: intra-GPU hardware error propagation."""

import pytest

from repro.core.propagation import PropagationAnalyzer
from repro.core.report import render_figure5
from repro.faults.xid import Xid


@pytest.fixture(scope="module")
def propagation(bench_study):
    return bench_study.propagation()


@pytest.fixture(scope="module")
def graph(propagation):
    return propagation.analyze()


def test_bench_propagation_analysis(benchmark, bench_study, report_sink):
    errors = bench_study.error_statistics().errors

    def analyze():
        return PropagationAnalyzer(errors).analyze()

    graph = benchmark.pedantic(analyze, rounds=3, iterations=1)
    assert graph.source_counts
    report_sink.append(render_figure5(PropagationAnalyzer(errors)))


def test_gsp_overwhelmingly_self_or_fatal(propagation):
    paths = propagation.hardware_paths()
    assert paths["p_gsp_self_or_terminal"] == pytest.approx(0.99, abs=0.02)


def test_gsp_spills_into_pmu_rarely(graph):
    p = graph.probability(Xid.GSP, Xid.PMU_SPI)
    assert 0.0 < p < 0.04  # paper: 0.01 (21 of 2,136 cases)


def test_gsp_errors_appear_in_isolation(graph):
    # Paper: 99% of GSP errors had no preceding error.
    assert graph.isolation_probability(Xid.GSP) > 0.97


def test_pmu_to_mmu_is_dominant_path(graph):
    assert graph.probability(Xid.PMU_SPI, Xid.MMU) == pytest.approx(0.82, abs=0.12)
    assert graph.probability(Xid.PMU_SPI, Xid.PMU_SPI) == pytest.approx(0.18, abs=0.12)


def test_pmu_to_mmu_propagation_is_fast(graph):
    # Close time proximity suggests causality (paper Section 4.4).
    delay = graph.mean_delay(Xid.PMU_SPI, Xid.MMU)
    assert 0.0 < delay < 10.0


def test_fallen_off_bus_terminal(graph):
    assert graph.terminal_probability(Xid.FALLEN_OFF_BUS) > 0.9


def test_mmu_rarely_propagates_further(graph):
    # MMU is the sink of Figure 5's paths, not a source.
    outgoing = sum(p for _, p, _ in graph.successors(Xid.MMU))
    assert outgoing < 0.35
