"""Streaming coalescer: throughput and live-detection latency."""

import pytest

from repro.core.coalesce import coalesce_errors
from repro.core.parsing import iter_parse_syslog
from repro.core.streaming import StreamingCoalescer


@pytest.fixture(scope="module")
def ordered_records(bench_dataset):
    records = list(iter_parse_syslog(bench_dataset.log_lines(include_noise=False)))
    records.sort(key=lambda r: r.time)
    return records


def test_bench_streaming_throughput(benchmark, ordered_records):
    def run():
        coalescer = StreamingCoalescer()
        for record in ordered_records:
            coalescer.feed(record)
        return coalescer.flush()

    errors = benchmark.pedantic(run, rounds=2, iterations=1)
    assert errors


def test_streaming_equals_batch(ordered_records):
    coalescer = StreamingCoalescer()
    for record in ordered_records:
        coalescer.feed(record)
    online = coalescer.flush()
    batch = coalesce_errors(ordered_records)
    assert len(online) == len(batch)
    assert sum(e.n_raw for e in online) == sum(e.n_raw for e in batch)


def test_alarm_latency_vs_postmortem(ordered_records, report_sink):
    """Live alarms fire within ~threshold seconds of burst onset; the batch
    pipeline only learns about a burst after it *ends* — for the paper's
    17-day saga that difference is the whole incident."""
    threshold = 1_800.0
    coalescer = StreamingCoalescer(alarm_after_seconds=threshold)
    for record in ordered_records:
        coalescer.feed(record)
    errors = coalescer.flush()
    alarms = coalescer.alarms
    assert alarms

    long_runs = [e for e in errors if e.persistence > threshold]
    assert long_runs
    # Every sufficiently long run alarmed, and it alarmed while young.
    assert len(alarms) >= len(long_runs)
    postmortem_delay = sum(e.persistence for e in long_runs) / len(long_runs)
    live_delay = sum(a.open_persistence for a in alarms) / len(alarms)
    assert live_delay < postmortem_delay / 3

    report_sink.append(
        "Streaming monitor - live alarming vs post-mortem coalescing\n"
        f"  long (> {threshold/60:.0f} min) runs        : {len(long_runs)}\n"
        f"  live alarms fired             : {len(alarms)}\n"
        f"  mean detection delay (live)   : {live_delay/60:.1f} min\n"
        f"  mean detection delay (batch)  : {postmortem_delay/60:.1f} min"
    )
