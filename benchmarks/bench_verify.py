"""Benchmark parallel verification: serial vs ``--jobs N`` fan-out.

Builds one shared study through the session layer, runs the
tolerance-annotated experiment set twice — ``jobs=1`` and ``jobs=N`` —
and verifies the fan-out identity contract end to end:

* every ``ExperimentResult`` JSON artifact is byte-identical;
* every run manifest (including the ``config_hashes[\"run\"]`` digest)
  is byte-identical;
* the rendered verification report is byte-identical, pass/fail
  verdict included.

Timings land in ``BENCH_verify.json``.  The identity contract is a hard
gate everywhere; the >= 2x speedup expectation at 4 jobs is gated only
where the host can physically deliver it (>= 4 CPUs) — a single-core
box can only add pool overhead, and pretending otherwise would make the
benchmark fail for reasons the code cannot fix.  CI runs ``--smoke`` as
a cheap identity check and the full run on multi-core runners::

    PYTHONPATH=src python benchmarks/bench_verify.py            # full timing
    PYTHONPATH=src python benchmarks/bench_verify.py --smoke    # CI check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.experiments import verified_experiments
from repro.results import verify_results
from repro.session import RunConfig, Session

#: The speedup the full benchmark promises at 4 jobs on a wide host.
SPEEDUP_FLOOR = 2.0


def _parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    # The goldens' setting: several paper bands are absolute numbers
    # anchored at scale 0.05, so the fidelity verdict only means
    # "pass" there (the same configuration CI's smoke gate runs).
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale (1.0 = the paper's 855-day window)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel leg")
    parser.add_argument("--tolerance-scale", type=float, default=2.0)
    parser.add_argument("--output", default="BENCH_verify.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny dataset for CI: verifies serial/parallel "
                        "identity, skips the speedup expectation")
    return parser.parse_args(argv)


def _fingerprint(results, report) -> list:
    """Byte-level identity material for one verification run."""
    return [
        (
            r.experiment_id,
            r.render_json(),
            json.dumps(r.manifest.to_dict(), sort_keys=True),
        )
        for r in results
    ] + [report.render_table(), report.ok]


def _run_leg(config: RunConfig, identifiers, tolerance_scale: float):
    """One timed verification pass over a freshly wired session.

    The shared study build is *excluded* from the timing: both
    invocations pay it identically (it is serial by construction), and
    the benchmark's subject is the experiment fan-out — what ``--jobs``
    can actually accelerate.  Pool startup, study shipping and
    per-worker rebuild *are* charged to the parallel leg.
    """
    session = Session(config)
    session.study  # untimed: identical serial cost in both legs
    t0 = time.perf_counter()
    results = session.run_many(identifiers)
    report = verify_results(results, tolerance_scale=tolerance_scale)
    seconds = time.perf_counter() - t0
    return seconds, _fingerprint(results, report), report


def main(argv=None) -> int:
    args = _parse_args(argv)
    if args.smoke:
        # Keep the golden scale (the verdict is meaningless elsewhere);
        # just shrink the pool so narrow CI runners are not oversubscribed.
        args.jobs = min(args.jobs, 2)

    identifiers = [e.identifier for e in verified_experiments()]
    base = RunConfig(scale=args.scale, seed=args.seed)
    print(f"verifying {len(identifiers)} experiments at scale {args.scale} "
          f"(seed {args.seed})...")

    # Warm-up: synthesize once so neither timed leg is charged for the
    # process's first-touch costs (imports, allocator growth).
    Session(base).study

    serial_seconds, serial_print, report = _run_leg(
        base, identifiers, args.tolerance_scale
    )
    parallel_seconds, parallel_print, _ = _run_leg(
        base.with_(jobs=args.jobs), identifiers, args.tolerance_scale
    )

    identical = serial_print == parallel_print
    speedup = (serial_seconds / parallel_seconds
               if parallel_seconds > 0 else 0.0)
    cpu_count = os.cpu_count() or 1
    speedup_gated = (not args.smoke and args.jobs >= 4
                     and cpu_count >= args.jobs)

    result = {
        "config": {
            "scale": args.scale,
            "seed": args.seed,
            "jobs": args.jobs,
            "tolerance_scale": args.tolerance_scale,
            "smoke": args.smoke,
        },
        "cpu_count": cpu_count,
        "n_experiments": len(identifiers),
        "experiments": identifiers,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_gated": speedup_gated,
        "identity_ok": identical,
        "verify_ok": report.ok,
        "n_checks": report.n_pass + report.n_fail + report.n_skip,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)

    print(f"serial   : {serial_seconds:7.2f} s")
    print(f"parallel : {parallel_seconds:7.2f} s  "
          f"({args.jobs} jobs, speedup {speedup:.2f}x)")
    print(f"results, manifests and report identical: {identical}")
    print(f"wrote {args.output}")

    if not identical:
        print("ERROR: serial and parallel verification diverge",
              file=sys.stderr)
        return 1
    if speedup_gated and speedup < SPEEDUP_FLOOR:
        print(f"ERROR: speedup {speedup:.2f}x below the "
              f"{SPEEDUP_FLOOR:.0f}x floor at {args.jobs} jobs "
              f"(cpu_count={cpu_count})", file=sys.stderr)
        return 1
    if not args.smoke and not speedup_gated:
        print(f"WARNING: speedup not gated on this host "
              f"(cpu_count={cpu_count} < jobs={args.jobs})",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
