"""Ablation: the PMU->MMU cascade, derived mechanistically.

Figure 5's highest-impact propagation edge (PMU SPI -> MMU at 0.82) is an
*observed correlation* in the paper; the DVFS substrate derives it from a
mechanism — SPI failure -> stale operating point -> marginal translation
logic — and shows which knobs move it.
"""

import numpy as np
import pytest

from repro.pmu.dvfs import DvfsController
from repro.pmu.spi import SpiBus, SpiConfig
from repro.util.tables import Table

TICKS = 250_000


def _run(corruption=0.08, hazard=1.2, stale=3, seed=1):
    controller = DvfsController(
        SpiBus(SpiConfig(corruption_prob=corruption)),
        mmu_hazard_per_mismatch=hazard,
        stale_ticks_after_failure=stale,
    )
    return controller.run(TICKS, np.random.default_rng(seed))


@pytest.fixture(scope="module")
def baseline():
    return _run()


def test_bench_dvfs_loop(benchmark):
    report = benchmark.pedantic(
        lambda: _run(seed=2), rounds=1, iterations=1
    )
    assert report.ticks == TICKS


def test_cascade_probability_matches_figure5(baseline, report_sink):
    assert baseline.p_mmu_given_spi_failure == pytest.approx(0.82, abs=0.08)
    table = Table(
        "PMU ablation - the derived PMU->MMU cascade (paper edge: 0.82)",
        ["SPI failures", "MMU faults in stale windows", "P(MMU | SPI failure)"],
    )
    table.add_row(
        baseline.spi_failures, baseline.failures_with_mmu,
        baseline.p_mmu_given_spi_failure,
    )
    report_sink.append(table.render())


def test_faster_spi_recovery_cuts_the_cascade(report_sink):
    """Shrinking the stale window (faster re-establishment of PMU comms)
    is the actionable fix the mechanism suggests."""
    slow = _run(stale=6, seed=3)
    fast = _run(stale=1, seed=3)
    assert fast.p_mmu_given_spi_failure < slow.p_mmu_given_spi_failure - 0.15
    report_sink.append(
        "PMU mitigation: P(MMU|SPI failure) "
        f"{slow.p_mmu_given_spi_failure:.2f} with a 6-tick stale window vs "
        f"{fast.p_mmu_given_spi_failure:.2f} with 1-tick recovery"
    )


def test_bus_quality_drives_event_rate(baseline):
    degraded = _run(corruption=0.15, seed=4)
    assert degraded.spi_failures > baseline.spi_failures * 2


def test_healthy_bus_no_events(report_sink):
    clean = _run(corruption=0.0, seed=5)
    assert clean.spi_failures == 0
    assert clean.mmu_faults == 0
