"""Algorithm 1 and Stage I throughput, plus the paper's dt ablation."""

import pytest

from repro.core.coalesce import CoalesceConfig, coalesce_errors
from repro.core.parsing import parse_syslog


@pytest.fixture(scope="module")
def raw_lines(bench_dataset):
    return list(bench_dataset.log_lines())


@pytest.fixture(scope="module")
def records(raw_lines):
    return parse_syslog(raw_lines)


def test_bench_stage1_parsing_throughput(benchmark, raw_lines):
    records = benchmark.pedantic(lambda: parse_syslog(raw_lines), rounds=2, iterations=1)
    assert len(records) > 1_000


def test_bench_stage2_coalescing_throughput(benchmark, records):
    errors = benchmark.pedantic(
        lambda: coalesce_errors(records), rounds=3, iterations=1
    )
    assert len(errors) < len(records)


class TestDeltaTAblation:
    """Paper Section 3.2: varying dt from 5 to 20 seconds barely moves the
    results; far larger windows start merging distinct errors."""

    def test_5s_vs_20s_stable(self, records):
        count_5 = len(coalesce_errors(records, CoalesceConfig(window_seconds=5.0)))
        count_20 = len(coalesce_errors(records, CoalesceConfig(window_seconds=20.0)))
        assert abs(count_5 - count_20) / count_5 < 0.05

    def test_10s_between(self, records):
        counts = {
            dt: len(coalesce_errors(records, CoalesceConfig(window_seconds=dt)))
            for dt in (5.0, 10.0, 20.0)
        }
        assert counts[5.0] >= counts[10.0] >= counts[20.0]

    def test_huge_window_collapses_bursty_codes(self, records):
        count_5 = len(coalesce_errors(records, CoalesceConfig(window_seconds=5.0)))
        count_10m = len(
            coalesce_errors(records, CoalesceConfig(window_seconds=600.0))
        )
        assert count_10m < count_5 * 0.8

    def test_bench_dt_sweep(self, benchmark, records):
        def sweep():
            return [
                len(coalesce_errors(records, CoalesceConfig(window_seconds=dt)))
                for dt in (5.0, 10.0, 20.0)
            ]

        counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
        assert len(counts) == 3
