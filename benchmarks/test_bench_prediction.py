"""The Section-4.3 future-work model: predicting long-persisting errors.

Trains on the first half of the observation window, evaluates on the
second half — the deployment setting an SRE team would face.
"""

import numpy as np
import pytest

from repro.core.parsing import iter_parse_syslog
from repro.core.prediction import PersistencePredictor, extract_runs
from repro.util.tables import Table


@pytest.fixture(scope="module")
def split_runs(bench_dataset):
    records = list(iter_parse_syslog(bench_dataset.log_lines(include_noise=False)))
    runs = extract_runs(records)
    runs.sort(key=lambda r: r.start_time)
    half = len(runs) // 2
    return runs[:half], runs[half:]


@pytest.fixture(scope="module")
def fitted(split_runs):
    train, _ = split_runs
    return PersistencePredictor(long_threshold_seconds=600.0).fit(train)


def test_bench_training(benchmark, split_runs):
    train, _ = split_runs
    predictor = benchmark(
        lambda: PersistencePredictor(long_threshold_seconds=600.0).fit(train)
    )
    assert predictor.weights is not None


def test_prediction_quality(fitted, split_runs, report_sink):
    _, test = split_runs
    metrics = fitted.evaluate(test)
    table = Table(
        "Section 4.3 future work - long-persistence prediction (held-out half)",
        ["Positives", "Predicted", "Precision", "Recall", "Accuracy"],
    )
    table.add_row(
        metrics["positives"],
        metrics["predicted_positives"],
        metrics["precision"],
        metrics["recall"],
        metrics["accuracy"],
    )
    report_sink.append(table.render())
    assert metrics["recall"] > 0.6
    base_rate = metrics["positives"] / max(len(test), 1)
    assert metrics["precision"] > 3 * base_rate


def test_probabilities_rank_long_runs_higher(fitted, split_runs):
    _, test = split_runs
    probabilities = fitted.predict_proba(test)
    labels = fitted.labels(test).astype(bool)
    assert labels.sum() >= 5
    assert probabilities[labels].mean() > probabilities[~labels].mean() + 0.2


def test_early_warning_lead_time(fitted, split_runs):
    """Flagged runs are caught with hours of persistence still ahead —
    the preventive-action window the paper asks for."""
    _, test = split_runs
    flagged = [
        run
        for run, hit in zip(test, fitted.predict(test))
        if hit and run.final_persistence > 600.0
    ]
    assert flagged
    lead = np.mean([run.final_persistence - 300.0 for run in flagged])
    assert lead > 600.0  # >10 minutes of actionable warning on average
