"""Ablation: checkpointing under the measured failure process.

Section 5.1: "While checkpointing is an option, checkpointing routines have
high overhead up to 40%".  Section 5.3/Figure 9b: long jobs survive repeated
errors because they checkpoint.  This bench quantifies both claims against
the measured 67-hour MTBF.
"""

import pytest

from repro.slurm.checkpointing import (
    CheckpointConfig,
    expected_overhead,
    optimal_interval,
    simulate_run,
)
from repro.util.tables import Table

MEASURED_MTBF = 67.0


@pytest.fixture(scope="module")
def config():
    return CheckpointConfig(
        checkpoint_cost_hours=0.1, restore_cost_hours=0.25, mtbf_hours=MEASURED_MTBF
    )


def test_bench_checkpointed_run(benchmark, config):
    outcome = benchmark.pedantic(
        lambda: simulate_run(300.0, config, seed=2), rounds=3, iterations=1
    )
    assert outcome.wall_hours >= 300.0


def test_long_jobs_finish_only_with_checkpointing(config, report_sink):
    useful = 600.0  # ~9 MTBFs of useful work: Figure 9b's long completers
    with_ckpt = simulate_run(useful, config, seed=4)
    without = simulate_run(useful, config, seed=4, checkpointing=False)
    assert with_ckpt.overhead(useful) < 0.3
    # Restart-from-zero pays at minimum several full re-executions.
    assert without.wall_hours > with_ckpt.wall_hours * 4
    assert without.n_failures > with_ckpt.n_failures

    table = Table(
        "Checkpoint ablation - 600h job at the measured 67h MTBF",
        ["Strategy", "Wall (h)", "Failures", "Overhead %"],
    )
    table.add_row("Young-interval checkpoints", with_ckpt.wall_hours,
                  with_ckpt.n_failures, with_ckpt.overhead(useful) * 100)
    table.add_row("No checkpointing (restart)", without.wall_hours,
                  without.n_failures, without.overhead(useful) * 100)
    report_sink.append(table.render())


def test_interval_sweep_has_interior_optimum(config):
    tau_star = optimal_interval(config)
    overheads = {
        tau: expected_overhead(config, tau)
        for tau in (tau_star / 8, tau_star, tau_star * 8)
    }
    assert overheads[tau_star] == min(overheads.values())


def test_overhead_modest_at_measured_mtbf(config):
    # At Delta's 67h MTBF the optimal overhead is a few percent, far from
    # the 40% worst case the paper cites for aggressive settings.
    assert expected_overhead(config, optimal_interval(config)) < 0.10


def test_forty_percent_regime(report_sink):
    # The paper's "up to 40%": heavy checkpoints against a short MTBF.
    hostile = CheckpointConfig(
        checkpoint_cost_hours=0.5, restore_cost_hours=1.0, mtbf_hours=6.0
    )
    overhead = expected_overhead(hostile, optimal_interval(hostile))
    assert 0.35 < overhead < 0.8
    report_sink.append(
        "Checkpoint overhead: "
        f"{expected_overhead(CheckpointConfig(mtbf_hours=MEASURED_MTBF), optimal_interval(CheckpointConfig(mtbf_hours=MEASURED_MTBF)))*100:.1f}% "
        f"at Delta's 67h MTBF vs {overhead*100:.0f}% in the paper's "
        "up-to-40% hostile regime"
    )
